type stats = {
  iterations : int;
  firings : int;
  new_tuples : int;
  duplicate_firings : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[iterations=%d firings=%d new_tuples=%d duplicates=%d@]" s.iterations
    s.firings s.new_tuples s.duplicate_firings

(* One append-only relation per predicate plus two watermarks replaces
   the old full/delta/pending database triple: Old is the prefix
   [0, m_old), the delta [m_old, m_cur), and everything past m_cur is
   pending — queued for the next iteration. Advancing an iteration is
   two integer assignments per predicate; the per-round delta
   databases, index rebuilds and full-store merges of the previous
   design are gone (see DESIGN.md §11). *)
type mark = {
  m_rel : Relation.t;
  mutable m_old : int;
  mutable m_cur : int;
}

type t = {
  program : Program.t;
  plans : Joiner.plan list;
  rule_firings : int array;
  (* Per-engine interning arena (see Arena): every tuple entering the
     engine — derived heads and injected deliveries alike — is mapped
     to one canonical physical value, so the seen-probes and dedup
     paths downstream resolve equality by pointer. Per-engine, not
     global: the domain runtime runs engines concurrently. [None]
     disables interning (the property suite checks both modes agree). *)
  arena : Arena.t option;
  (* Slab-backed storage rides the same switch as the arena: the flat
     columns only pay off when tuples are interned (one canonical
     physical value per tuple), and [~intern:false] is the documented
     way to A/B the whole fast path against the boxed reference
     implementation (see DESIGN.md §16). *)
  slab : bool;
  full : Database.t;  (* the single store; windows select the views *)
  marks : (string, mark) Hashtbl.t;
  mutable bootstrapped : bool;
  mutable iterations : int;
  mutable firings : int;
  mutable new_tuples : int;
  mutable duplicate_firings : int;
}

let canonical engine tuple =
  match engine.arena with
  | Some a -> Arena.intern a tuple
  | None -> tuple

let arity_of program pred =
  match List.assoc_opt pred (Program.arities program) with
  | Some a -> Some a
  | None -> None

(* The predicate's mark, creating the relation and mark on first use.
   A fresh mark treats everything already in the relation as processed
   state: that is what {!create} wants for the EDB, and a predicate
   first seen through {!inject} is empty anyway. *)
let mark_of engine pred ~arity =
  match Hashtbl.find_opt engine.marks pred with
  | Some m -> m
  | None ->
    let rel =
      match Database.find engine.full pred with
      | Some r -> r
      | None -> Database.declare ~slab:engine.slab engine.full pred arity
    in
    let n = Relation.cardinal rel in
    let m = { m_rel = rel; m_old = n; m_cur = n } in
    Hashtbl.add engine.marks pred m;
    m

let create ?(pushdown = true) ?(reorder = false) ?(intern = true) program
    ~edb =
  (match Program.check program with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Seminaive.create: " ^ msg));
  let full = Database.copy ~slab:intern edb in
  let derived = Program.derived_predicates program in
  (* Declare derived relations so lookups during joins are uniform. *)
  List.iter
    (fun pred ->
      match arity_of program pred with
      | Some a -> ignore (Database.declare ~slab:intern full pred a)
      | None -> ())
    derived;
  let engine =
    {
      program;
      plans =
        List.map
          (fun r -> Joiner.compile ~pushdown ~reorder r)
          (Program.rules program);
      rule_firings = Array.make (List.length (Program.rules program)) 0;
      arena = (if intern then Some (Arena.create ()) else None);
      slab = intern;
      full;
      marks = Hashtbl.create 16;
      bootstrapped = false;
      iterations = 0;
      firings = 0;
      new_tuples = 0;
      duplicate_firings = 0;
    }
  in
  (* Base program facts are initial state (visible to the bootstrap
     scan); derived program facts are queued as if injected. Marking
     base predicates after their facts and derived predicates before
     theirs gets both for free. *)
  List.iter
    (fun (pred, tuple) ->
      if not (List.mem pred derived) then
        ignore (Database.add_fact engine.full pred tuple))
    program.facts;
  List.iter
    (fun pred -> ignore (mark_of engine pred ~arity:0))
    (Database.predicates engine.full);
  List.iter
    (fun (pred, tuple) ->
      if List.mem pred derived then begin
        let m = mark_of engine pred ~arity:(Tuple.arity tuple) in
        if not (Relation.mem m.m_rel tuple) then
          Relation.add_new m.m_rel (canonical engine tuple)
      end)
    program.facts;
  engine

let inject engine pred tuple =
  let m = mark_of engine pred ~arity:(Tuple.arity tuple) in
  if Relation.mem m.m_rel tuple then false
  else begin
    Relation.add_new m.m_rel (canonical engine tuple);
    true
  end

let windows engine : Joiner.relations =
  {
    window_of =
      (fun pred ->
        match Hashtbl.find_opt engine.marks pred with
        | None -> None
        | Some m ->
          Some
            { Joiner.w_rel = m.m_rel; w_old = m.m_old; w_cur = m.m_cur });
  }

(* The per-run emit path: the head predicate's relation is resolved
   once per Joiner.run (it is invariant across the run's firings), so
   a firing costs one membership probe — the single store covers what
   used to be separate full-, pending- and delta-probes — and, when
   new, one unchecked insert. *)
let make_emit engine ~idx ~head_pred ~head_rel ~fresh =
 fun t ->
  engine.rule_firings.(idx) <- engine.rule_firings.(idx) + 1;
  engine.firings <- engine.firings + 1;
  if Relation.mem head_rel t then
    engine.duplicate_firings <- engine.duplicate_firings + 1
  else begin
    let t = canonical engine t in
    (* Absent — checked just above; appended past m_cur, hence part of
       the next delta, invisible to the sources of this run. *)
    Relation.add_new head_rel t;
    engine.new_tuples <- engine.new_tuples + 1;
    fresh := (head_pred, t) :: !fresh
  end

(* The slab-mode emit path: a [Joiner.run] firing first hits the
   [fast_dedup] filter, which answers duplicate-or-not from the head
   relation's raw columns ({!Relation.mem_raw}) without materializing
   a tuple — on the duplicate-heavy workloads (grid, hotspot) most
   firings end right there, allocation-free. All counters live in the
   filter so they advance exactly as in {!make_emit}; [known_new]
   carries the filter's verdict to the emit so a verified-absent tuple
   is inserted without a second membership probe, while inexact heads
   and demoted relations (filter couldn't decide) re-check with
   {!Relation.mem}. *)
let make_fast_pair engine ~idx ~head_pred ~head_rel ~fresh =
  let known_new = ref false in
  let fast_dedup ~exact ~hash raws =
    engine.rule_firings.(idx) <- engine.rule_firings.(idx) + 1;
    engine.firings <- engine.firings + 1;
    if exact && Relation.slabbed head_rel then
      if Relation.mem_raw head_rel ~hash raws then begin
        engine.duplicate_firings <- engine.duplicate_firings + 1;
        `Dup
      end
      else begin
        known_new := true;
        `New
      end
    else begin
      known_new := false;
      `New
    end
  in
  let emit t =
    if (not !known_new) && Relation.mem head_rel t then
      engine.duplicate_firings <- engine.duplicate_firings + 1
    else begin
      let t = canonical engine t in
      Relation.add_new head_rel t;
      engine.new_tuples <- engine.new_tuples + 1;
      fresh := (head_pred, t) :: !fresh
    end
  in
  (fast_dedup, emit)

let head_mark engine (rule : Rule.t) =
  mark_of engine rule.head.Atom.pred
    ~arity:(Array.length rule.head.Atom.args)

let bootstrap engine =
  if engine.bootstrapped then
    invalid_arg "Seminaive.bootstrap: already bootstrapped";
  engine.bootstrapped <- true;
  let rels = windows engine in
  let fresh = ref [] in
  List.iteri
    (fun idx plan ->
      let rule = Joiner.rule_of plan in
      let head = head_mark engine rule in
      let sources = Array.make (List.length rule.body) Joiner.Current in
      if engine.slab then begin
        let fast_dedup, emit =
          make_fast_pair engine ~idx ~head_pred:rule.head.Atom.pred
            ~head_rel:head.m_rel ~fresh
        in
        Joiner.run plan ~sources rels ~fast_dedup ~emit
      end
      else
        Joiner.run plan ~sources rels
          ~emit:
            (make_emit engine ~idx ~head_pred:rule.head.Atom.pred
               ~head_rel:head.m_rel ~fresh))
    engine.plans;
  List.rev !fresh

let step engine =
  if not engine.bootstrapped then
    invalid_arg "Seminaive.step: bootstrap first";
  (* Advance: yesterday's pending becomes today's delta. Two integer
     writes per predicate — the old design's delta-database swap and
     end-of-round merge collapse into this. *)
  let any_delta = ref false in
  Hashtbl.iter
    (fun _ m ->
      m.m_old <- m.m_cur;
      m.m_cur <- Relation.cardinal m.m_rel;
      if m.m_cur > m.m_old then any_delta := true)
    engine.marks;
  if not !any_delta then []
  else begin
    engine.iterations <- engine.iterations + 1;
    let rels = windows engine in
    let has_delta pred =
      match Hashtbl.find_opt engine.marks pred with
      | Some m -> m.m_cur > m.m_old
      | None -> false
    in
    let fresh = ref [] in
    List.iteri
      (fun idx plan ->
        let rule = Joiner.rule_of plan in
        let head = head_mark engine rule in
        let head_pred = rule.head.Atom.pred in
        let fast_dedup, emit =
          if engine.slab then
            let fd, emit =
              make_fast_pair engine ~idx ~head_pred ~head_rel:head.m_rel
                ~fresh
            in
            (Some fd, emit)
          else
            ( None,
              make_emit engine ~idx ~head_pred ~head_rel:head.m_rel ~fresh )
        in
        let body = Array.of_list rule.body in
        let n = Array.length body in
        for m = 0 to n - 1 do
          if has_delta body.(m).Atom.pred then begin
            let sources =
              Array.init n (fun i ->
                  if i < m then Joiner.Old
                  else if i = m then Joiner.Delta
                  else Joiner.Current)
            in
            Joiner.run plan ~sources rels ?fast_dedup ~emit
          end
        done)
      engine.plans;
    List.rev !fresh
  end

let has_pending engine =
  Hashtbl.fold
    (fun _ m acc -> acc || Relation.cardinal m.m_rel > m.m_cur)
    engine.marks false

(* Drive the pending delta to a local fixpoint. Work is proportional
   to the consequences of the queued tuples, not the store: an engine
   with nothing pending returns immediately, which is what makes
   live-session updates cheap — injecting a small batch and resuming
   re-fires only the rules the batch can reach. *)
let resume engine =
  if not engine.bootstrapped then
    invalid_arg "Seminaive.resume: bootstrap first";
  let fresh = ref [] in
  while has_pending engine do
    List.iter (fun nt -> fresh := nt :: !fresh) (step engine)
  done;
  List.rev !fresh

(* Not [resume]: the per-step fresh lists are discarded, so there is
   no point re-consing them into one accumulator. *)
let run_to_fixpoint engine =
  if not engine.bootstrapped then ignore (bootstrap engine);
  while has_pending engine do
    ignore (step engine)
  done

(* Remove concrete facts from the store. Only legal on a quiescent
   engine: the windows are positional, and a removal rebuilds the
   backing store, so every mark is re-pinned to the new cardinal
   (everything present becomes processed state with no firings owed).
   The caller owns the consequences — this is the primitive the
   incremental sessions use to install a net-deletion patch computed
   by [Stratified.Live], not a maintenance algorithm by itself. *)
let retract_facts engine pairs =
  if has_pending engine then
    invalid_arg "Seminaive.retract_facts: engine has pending work";
  let module Tset = Hashtbl.Make (Tuple) in
  let by_pred : (string, unit Tset.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (pred, tuple) ->
      let set =
        match Hashtbl.find_opt by_pred pred with
        | Some s -> s
        | None ->
          let s = Tset.create 16 in
          Hashtbl.add by_pred pred s;
          s
      in
      Tset.replace set tuple ())
    pairs;
  let removed = ref 0 in
  Hashtbl.iter
    (fun pred set ->
      match Database.find engine.full pred with
      | None -> ()
      | Some rel ->
        removed := !removed + Relation.remove_all rel (Tset.mem set))
    by_pred;
  if !removed > 0 then
    Hashtbl.iter
      (fun _ m ->
        let n = Relation.cardinal m.m_rel in
        m.m_old <- n;
        m.m_cur <- n)
      engine.marks;
  !removed

(* A checkpoint needs the store plus, per predicate, the frontier
   between processed state and the still-pending suffix: restoring
   with a merged store alone would lose the firings the pending tuples
   still owe. The delta watermark need not be saved — the first step
   after a restore advances it before any join reads it. *)
type snapshot = {
  snap_db : Database.t;
  snap_frontiers : (string * int) list;
  snap_bootstrapped : bool;
}

let snapshot engine =
  {
    snap_db = Database.copy engine.full;
    snap_frontiers =
      Hashtbl.fold
        (fun pred m acc -> (pred, m.m_cur) :: acc)
        engine.marks [];
    snap_bootstrapped = engine.bootstrapped;
  }

let restore ?(pushdown = true) ?(reorder = false) ?(intern = true) program
    snap =
  (match Program.check program with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Seminaive.restore: " ^ msg));
  let full = Database.copy ~slab:intern snap.snap_db in
  let engine =
    {
      program;
      plans =
        List.map
          (fun r -> Joiner.compile ~pushdown ~reorder r)
          (Program.rules program);
      rule_firings = Array.make (List.length (Program.rules program)) 0;
      arena = (if intern then Some (Arena.create ()) else None);
      slab = intern;
      full;
      marks = Hashtbl.create 16;
      bootstrapped = snap.snap_bootstrapped;
      iterations = 0;
      firings = 0;
      new_tuples = 0;
      duplicate_firings = 0;
    }
  in
  List.iter
    (fun pred ->
      let m = mark_of engine pred ~arity:0 in
      match List.assoc_opt pred snap.snap_frontiers with
      | Some frontier ->
        m.m_old <- frontier;
        m.m_cur <- frontier
      | None -> ())
    (Database.predicates full);
  engine

let database engine = Database.copy engine.full

let stats engine =
  {
    iterations = engine.iterations;
    firings = engine.firings;
    new_tuples = engine.new_tuples;
    duplicate_firings = engine.duplicate_firings;
  }

let join_probes engine =
  List.fold_left (fun acc plan -> acc + Joiner.probes plan) 0 engine.plans

let evaluate ?pushdown ?reorder ?intern program edb =
  let engine = create ?pushdown ?reorder ?intern program ~edb in
  run_to_fixpoint engine;
  (database engine, stats engine)

let arena_stats engine =
  match engine.arena with
  | Some a -> Some (Arena.size a, Arena.hits a, Arena.misses a)
  | None -> None

let per_rule_firings engine =
  List.mapi
    (fun idx rule -> (rule, engine.rule_firings.(idx)))
    (Program.rules engine.program)
