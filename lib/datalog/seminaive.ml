type stats = {
  iterations : int;
  firings : int;
  new_tuples : int;
  duplicate_firings : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[iterations=%d firings=%d new_tuples=%d duplicates=%d@]" s.iterations
    s.firings s.new_tuples s.duplicate_firings

type t = {
  program : Program.t;
  plans : Joiner.plan list;
  rule_firings : int array;
  full : Database.t;  (* base relations + derived tuples merged so far *)
  mutable pending : Database.t;  (* derived tuples awaiting processing *)
  mutable bootstrapped : bool;
  mutable iterations : int;
  mutable firings : int;
  mutable new_tuples : int;
  mutable duplicate_firings : int;
}

let arity_of program pred =
  match List.assoc_opt pred (Program.arities program) with
  | Some a -> Some a
  | None -> None

let create ?(pushdown = true) ?(reorder = false) program ~edb =
  (match Program.check program with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Seminaive.create: " ^ msg));
  let full = Database.copy edb in
  let pending = Database.create () in
  let derived = Program.derived_predicates program in
  (* Declare derived relations so lookups during joins are uniform. *)
  List.iter
    (fun pred ->
      match arity_of program pred with
      | Some a -> ignore (Database.declare full pred a)
      | None -> ())
    derived;
  let engine =
    {
      program;
      plans =
        List.map
          (fun r -> Joiner.compile ~pushdown ~reorder r)
          (Program.rules program);
      rule_firings = Array.make (List.length (Program.rules program)) 0;
      full;
      pending;
      bootstrapped = false;
      iterations = 0;
      firings = 0;
      new_tuples = 0;
      duplicate_firings = 0;
    }
  in
  List.iter
    (fun (pred, tuple) ->
      if List.mem pred derived then begin
        if
          (not (Database.mem engine.full pred))
          || not (Relation.mem (Database.get engine.full pred) tuple)
        then ignore (Database.add_fact engine.pending pred tuple)
      end
      else ignore (Database.add_fact engine.full pred tuple))
    program.facts;
  engine

let known engine pred tuple =
  (match Database.find engine.full pred with
   | Some r -> Relation.mem r tuple
   | None -> false)
  ||
  match Database.find engine.pending pred with
  | Some r -> Relation.mem r tuple
  | None -> false

let inject engine pred tuple =
  if known engine pred tuple then false
  else Database.add_fact engine.pending pred tuple

(* Record a firing; queue the head tuple when it is new. *)
let emit_result engine ~also_known pred acc tuple =
  engine.firings <- engine.firings + 1;
  if known engine pred tuple || also_known pred tuple then begin
    engine.duplicate_firings <- engine.duplicate_firings + 1;
    acc
  end
  else begin
    ignore (Database.add_fact engine.pending pred tuple);
    engine.new_tuples <- engine.new_tuples + 1;
    (pred, tuple) :: acc
  end

let bootstrap engine =
  if engine.bootstrapped then
    invalid_arg "Seminaive.bootstrap: already bootstrapped";
  engine.bootstrapped <- true;
  let rels : Joiner.relations =
    {
      old_of = (fun pred -> Database.find engine.full pred);
      delta_of = (fun _ -> None);
    }
  in
  let fresh = ref [] in
  List.iteri
    (fun idx plan ->
      let rule = Joiner.rule_of plan in
      let sources = Array.make (List.length rule.body) Joiner.Current in
      Joiner.run plan ~sources rels ~emit:(fun t ->
          engine.rule_firings.(idx) <- engine.rule_firings.(idx) + 1;
          fresh :=
            emit_result engine
              ~also_known:(fun _ _ -> false)
              rule.head.pred !fresh t))
    engine.plans;
  List.rev !fresh

let step engine =
  if not engine.bootstrapped then
    invalid_arg "Seminaive.step: bootstrap first";
  let delta = engine.pending in
  engine.pending <- Database.create ();
  if Database.total_tuples delta = 0 then []
  else begin
    engine.iterations <- engine.iterations + 1;
    let rels : Joiner.relations =
      {
        old_of = (fun pred -> Database.find engine.full pred);
        delta_of = (fun pred -> Database.find delta pred);
      }
    in
    let in_delta pred tuple =
      match Database.find delta pred with
      | Some r -> Relation.mem r tuple
      | None -> false
    in
    let has_delta pred = Database.cardinal delta pred > 0 in
    let fresh = ref [] in
    List.iteri
      (fun idx plan ->
        let rule = Joiner.rule_of plan in
        let body = Array.of_list rule.body in
        let n = Array.length body in
        for m = 0 to n - 1 do
          if has_delta body.(m).Atom.pred then begin
            let sources =
              Array.init n (fun i ->
                  if i < m then Joiner.Old
                  else if i = m then Joiner.Delta
                  else Joiner.Current)
            in
            Joiner.run plan ~sources rels ~emit:(fun t ->
                engine.rule_firings.(idx) <- engine.rule_firings.(idx) + 1;
                fresh :=
                  emit_result engine ~also_known:in_delta rule.head.pred
                    !fresh t)
          end
        done)
      engine.plans;
    ignore (Database.merge_into ~dst:engine.full ~src:delta);
    List.rev !fresh
  end

let has_pending engine = Database.total_tuples engine.pending > 0

let run_to_fixpoint engine =
  if not engine.bootstrapped then ignore (bootstrap engine);
  while has_pending engine do
    ignore (step engine)
  done

type snapshot = {
  snap_full : Database.t;
  snap_pending : Database.t;
  snap_bootstrapped : bool;
}

let snapshot engine =
  {
    snap_full = Database.copy engine.full;
    snap_pending = Database.copy engine.pending;
    snap_bootstrapped = engine.bootstrapped;
  }

let restore ?(pushdown = true) ?(reorder = false) program snap =
  (match Program.check program with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Seminaive.restore: " ^ msg));
  {
    program;
    plans =
      List.map
        (fun r -> Joiner.compile ~pushdown ~reorder r)
        (Program.rules program);
    rule_firings = Array.make (List.length (Program.rules program)) 0;
    full = Database.copy snap.snap_full;
    pending = Database.copy snap.snap_pending;
    bootstrapped = snap.snap_bootstrapped;
    iterations = 0;
    firings = 0;
    new_tuples = 0;
    duplicate_firings = 0;
  }

let database engine =
  let snapshot = Database.copy engine.full in
  ignore (Database.merge_into ~dst:snapshot ~src:engine.pending);
  snapshot

let stats engine =
  {
    iterations = engine.iterations;
    firings = engine.firings;
    new_tuples = engine.new_tuples;
    duplicate_firings = engine.duplicate_firings;
  }

let join_probes engine =
  List.fold_left (fun acc plan -> acc + Joiner.probes plan) 0 engine.plans

let evaluate ?pushdown ?reorder program edb =
  let engine = create ?pushdown ?reorder program ~edb in
  run_to_fixpoint engine;
  (database engine, stats engine)

let per_rule_firings engine =
  List.mapi
    (fun idx rule -> (rule, engine.rule_firings.(idx)))
    (Program.rules engine.program)
