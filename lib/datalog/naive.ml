let evaluate ?(max_iterations = max_int) program edb =
  let db = Database.copy edb in
  ignore (Database.merge_into ~dst:db ~src:(Program.facts_db program));
  let plans = List.map (fun r -> Joiner.compile r) (Program.rules program) in
  let rels = Joiner.current_of (fun pred -> Database.find db pred) in
  let changed = ref true in
  let passes = ref 0 in
  while !changed do
    if !passes >= max_iterations then
      failwith "Naive.evaluate: iteration budget exhausted";
    incr passes;
    changed := false;
    List.iter
      (fun plan ->
        let rule = Joiner.rule_of plan in
        let sources =
          Array.make (List.length rule.body) Joiner.Current
        in
        let fresh = ref [] in
        Joiner.run plan ~sources rels ~emit:(fun t ->
            fresh := t :: !fresh);
        List.iter
          (fun t ->
            if Database.add_fact db rule.head.pred t then changed := true)
          !fresh)
      plans
  done;
  db
