(** Immutable tuples of constants, with a cached structural hash.

    A tuple is the unit of storage in a {!Relation} and the unit of
    communication between processors in the parallel runtimes. The
    representation is abstract: construction computes the hash once,
    so every later [seen]-probe, index insert and channel-dedup lookup
    reads a cached word instead of rehashing the constant array, and
    {!equal} short-circuits on physical equality — tuples interned
    through an {!Arena} compare in O(1). *)

type t

val make : Const.t array -> t
(** Owned by the tuple after construction: callers must not mutate the
    array they pass to {!make}. *)

val make_with_hash : Const.t array -> int -> t
(** [make_with_hash a h] is [make a] for callers that already computed
    [h = hash_key a] while filling [a] (the Joiner folds the hash as it
    instantiates a head). Passing a wrong hash breaks dedup — the array
    is owned by the tuple, as with {!make}. *)

val raw_exact : t -> bool
(** Every constant satisfies {!Const.raw_exact} — the condition under
    which a slab relation may dedup by raw column words. *)

val of_list : Const.t list -> t
val arity : t -> int
val get : t -> int -> Const.t

val to_array : t -> Const.t array
(** A fresh copy of the constants — safe to mutate. *)

val project : t -> int array -> t
(** [project t positions] is the sub-tuple of [t] at [positions], in
    order. *)

val project_key : t -> int array -> Const.t array
(** Like {!project} but returns the bare constants — the form hash
    functions and index lookups consume — without paying for a tuple
    header or a hash of its own. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** The cached hash: O(1). *)

val hash_key : Const.t array -> int
(** Hash of a bare key array, consistent with [hash (make key)]. *)

val hash_proj : t -> int array -> int
(** [hash_proj t positions = hash_key (project_key t positions)],
    computed without allocating. Index inserts use this to bucket a
    tuple by its projection for free. *)

val proj_equal : t -> int array -> Const.t array -> bool
(** [proj_equal t positions key]: does [t] project to [key] on
    [positions]? The index-probe filter, again allocation-free. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(c1, c2, ...)]. *)

val to_string : t -> string

val of_ints : int list -> t
(** Convenience: a tuple of integer constants. *)

val of_syms : string list -> t
(** Convenience: a tuple of symbol constants. *)
