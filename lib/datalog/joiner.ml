type source = Old | Delta | Current

(* Where a value comes from when instantiating an atom argument or the
   head. *)
type slot =
  | Sconst of Const.t
  | Svar of int  (* index into the environment *)

type key_part = {
  kp_position : int;  (* argument position inside the atom *)
  kp_slot : slot;  (* value known before the atom is scanned *)
}

type binding = {
  b_position : int;
  b_var : int;  (* environment slot receiving the value *)
}

type compiled_guard = {
  cg : Rule.guard;
  cg_slots : int array;
  cg_keybuf : Const.t array;  (* reusable argument buffer, len = slots *)
}

type compiled_atom = {
  ca_pred : string;
  ca_index : int;  (* position in the rule body *)
  ca_key : key_part list;  (* bound positions: the index key *)
  ca_binds : binding list;  (* first occurrences of fresh variables *)
  ca_checks : binding list;  (* repeated fresh variables: equality checks *)
  mutable ca_guards : compiled_guard array;  (* complete after this atom *)
  (* Hot-path precomputation: the index positions, the key slots, the
     bind/check position-variable pairs — all flat arrays fixed at
     compile time — plus a reusable key buffer so a probe writes
     constants into place instead of allocating per-invocation lists
     and arrays. The buffer is sound to share across the recursive
     scan because each atom owns its own and fills it completely
     before its index lookup. *)
  ca_positions : int array;
  ca_slots : slot array;
  ca_keybuf : Const.t array;
  ca_bind_pos : int array;
  ca_bind_var : int array;
  ca_check_pos : int array;
  ca_check_var : int array;
}

type plan = {
  rule : Rule.t;
  nvars : int;
  head : slot array;
  head_pred : string;
  pre_guards : compiled_guard list;  (* guards with no variables *)
  atoms : compiled_atom list;
  nbody : int;
  mutable probes : int;  (* candidate tuples scanned across all runs *)
  (* Reusable head-instantiation buffers for the raw-word duplicate
     filter: the head constants and their [Const.to_raw] words, filled
     completely on every firing before use. *)
  head_vals : Const.t array;
  head_raws : int array;
}

let rule_of p = p.rule
let var_count p = p.nvars
let probes p = p.probes

(* Greedy scan-order heuristic: repeatedly pick the atom with the most
   already-bound argument positions (then the fewest unbound variables,
   then textual order). Avoids accidental cross products in rules
   written join-variable-last. *)
let greedy_order body =
  let bound = Hashtbl.create 8 in
  let score (a : Atom.t) =
    let bound_positions = ref 0 and unbound_vars = Hashtbl.create 4 in
    Array.iter
      (fun term ->
        match term with
        | Term.Const _ -> incr bound_positions
        | Term.Var v ->
          if Hashtbl.mem bound v then incr bound_positions
          else Hashtbl.replace unbound_vars v ())
      a.args;
    (!bound_positions, -Hashtbl.length unbound_vars)
  in
  let rec pick acc remaining =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let best =
        List.fold_left
          (fun best ((_, a) as item) ->
            match best with
            | None -> Some (item, score a)
            | Some (_, best_score) ->
              let s = score a in
              if s > best_score then Some (item, s) else best)
          None remaining
      in
      (match best with
       | None -> assert false
       | Some (((_, a) as item), _) ->
         List.iter (fun v -> Hashtbl.replace bound v ()) (Atom.vars a);
         pick (item :: acc)
           (List.filter (fun other -> not (other == item)) remaining))
  in
  pick [] (List.mapi (fun i a -> (i, a)) body)

let compile ?(pushdown = true) ?(reorder = false) (rule : Rule.t) =
  if not (Rule.is_safe rule) then
    invalid_arg ("Joiner.compile: unsafe rule " ^ Rule.to_string rule);
  let scan_order =
    if reorder then greedy_order rule.body
    else List.mapi (fun i a -> (i, a)) rule.body
  in
  let var_ids = Hashtbl.create 16 in
  let nvars = ref 0 in
  let var_id v =
    match Hashtbl.find_opt var_ids v with
    | Some i -> i
    | None ->
      let i = !nvars in
      incr nvars;
      Hashtbl.add var_ids v i;
      i
  in
  (* Body-first numbering: a variable's id is assigned at its first
     body occurrence, so every id is bound by the time it is used. *)
  let bound = Hashtbl.create 16 in
  let compile_atom idx (a : Atom.t) =
    let key = ref [] and binds = ref [] and checks = ref [] in
    let fresh_here = Hashtbl.create 4 in
    Array.iteri
      (fun pos term ->
        match term with
        | Term.Const c ->
          key := { kp_position = pos; kp_slot = Sconst c } :: !key
        | Term.Var v ->
          if Hashtbl.mem bound v then
            key :=
              { kp_position = pos; kp_slot = Svar (var_id v) } :: !key
          else if Hashtbl.mem fresh_here v then
            checks := { b_position = pos; b_var = var_id v } :: !checks
          else begin
            Hashtbl.add fresh_here v ();
            binds := { b_position = pos; b_var = var_id v } :: !binds
          end)
      a.args;
    Hashtbl.iter (fun v () -> Hashtbl.replace bound v ()) fresh_here;
    let key = List.rev !key in
    let binds = List.rev !binds and checks = List.rev !checks in
    {
      ca_pred = a.pred;
      ca_index = idx;
      ca_key = key;
      ca_binds = binds;
      ca_checks = checks;
      ca_guards = [||];
      ca_positions =
        Array.of_list (List.map (fun kp -> kp.kp_position) key);
      ca_slots = Array.of_list (List.map (fun kp -> kp.kp_slot) key);
      ca_keybuf = Array.make (List.length key) (Const.Int 0);
      ca_bind_pos = Array.of_list (List.map (fun b -> b.b_position) binds);
      ca_bind_var = Array.of_list (List.map (fun b -> b.b_var) binds);
      ca_check_pos = Array.of_list (List.map (fun b -> b.b_position) checks);
      ca_check_var = Array.of_list (List.map (fun b -> b.b_var) checks);
    }
  in
  let atoms = List.map (fun (idx, a) -> compile_atom idx a) scan_order in
  (* Guard placement: after the first atom at which all guard variables
     are bound (with pushdown), or after the last atom otherwise. *)
  let compiled_guards =
    List.map
      (fun (g : Rule.guard) ->
        let slots = Array.map var_id g.gvars in
        ( {
            cg = g;
            cg_slots = slots;
            cg_keybuf = Array.make (Array.length slots) (Const.Int 0);
          },
          g ))
      rule.guards
  in
  let nbody = List.length rule.body in
  let last_scanned =
    match List.rev scan_order with
    | (idx, _) :: _ -> idx
    | [] -> nbody - 1
  in
  (* The original index of the atom in SCAN order by which all the
     guard's variables are bound. *)
  let guard_position (g : Rule.guard) =
    if not pushdown then last_scanned
    else begin
      let remaining =
        ref
          (List.filter
             (fun v -> Array.exists (String.equal v) g.gvars)
             (Rule.body_vars rule)
          |> List.sort_uniq String.compare)
      in
      let position = ref last_scanned in
      List.iter
        (fun ((idx, a) : int * Atom.t) ->
          if !remaining <> [] then begin
            remaining :=
              List.filter (fun v -> not (List.mem v (Atom.vars a))) !remaining;
            if !remaining = [] then position := idx
          end)
        scan_order;
      !position
    end
  in
  let pre_guards =
    List.filter_map
      (fun (cg, (g : Rule.guard)) ->
        if Array.length g.gvars = 0 then Some cg else None)
      compiled_guards
  in
  let atoms =
    List.map
      (fun ca ->
        let mine =
          List.filter_map
            (fun (cg, (g : Rule.guard)) ->
              if Array.length g.gvars > 0 && guard_position g = ca.ca_index
              then Some cg
              else None)
            compiled_guards
        in
        { ca with ca_guards = Array.of_list mine })
      atoms
  in
  let head =
    Array.map
      (function
        | Term.Const c -> Sconst c
        | Term.Var v ->
          (match Hashtbl.find_opt var_ids v with
           | Some i -> Svar i
           | None -> assert false (* safety guarantees body occurrence *)))
      rule.head.args
  in
  {
    rule;
    nvars = !nvars;
    head;
    head_pred = rule.head.pred;
    pre_guards;
    atoms;
    nbody;
    probes = 0;
    head_vals = Array.make (Array.length head) (Const.Int 0);
    head_raws = Array.make (Array.length head) 0;
  }

(* A window over one append-only relation: positions [0, w_old) are
   the pre-iteration state, [w_old, w_cur) the delta, [0, w_cur) their
   union. Tuples at positions >= w_cur (appended by emits during the
   run) are invisible to every source — they are the next delta. *)
type window = {
  w_rel : Relation.t;
  w_old : int;
  w_cur : int;
}

type relations = { window_of : string -> window option }

let window_all rel =
  let n = Relation.cardinal rel in
  { w_rel = rel; w_old = n; w_cur = n }

let current_of find = { window_of = (fun pred -> Option.map window_all (find pred)) }

(* The guard's argument buffer is reused across calls: it is filled
   completely before [gfn] runs, and no [gfn] retains its argument
   (the memo table in Hash_fn copies the key before storing it). *)
let guard_holds env cg =
  let key = cg.cg_keybuf in
  let slots = cg.cg_slots in
  for i = 0 to Array.length slots - 1 do
    Array.unsafe_set key i env.(Array.unsafe_get slots i)
  done;
  cg.cg.gfn key = cg.cg.gexpect

let guards_ok env guards =
  let n = Array.length guards in
  let rec go i = i >= n || (guard_holds env (Array.unsafe_get guards i) && go (i + 1)) in
  go 0

(* The probe function of one atom: its relation window under the
   chosen source, with the index already resolved
   ([Relation.matcher]), so the per-candidate inner loop never touches
   a string-keyed database lookup or an index-table lookup — both are
   invariant across the probes of a single run. *)
let nil_probe _key _f = ()

let staged_probe ca ~sources rels =
  match rels.window_of ca.ca_pred with
  | None -> nil_probe
  | Some w ->
    let lo, hi =
      match sources.(ca.ca_index) with
      | Old -> (0, w.w_old)
      | Delta -> (w.w_old, w.w_cur)
      | Current -> (0, w.w_cur)
    in
    if lo >= hi then nil_probe
    else begin
      let m = Relation.matcher w.w_rel ~positions:ca.ca_positions in
      fun key f -> m key ~lo ~hi f
    end

let run plan ~sources ?fast_dedup rels ~emit =
  if Array.length sources <> plan.nbody then
    invalid_arg "Joiner.run: sources length mismatch";
  let env = Array.make (max plan.nvars 1) (Const.Int 0) in
  let nhead = Array.length plan.head in
  let emit_head =
    match fast_dedup with
    | None ->
      fun () ->
        let data = Array.make nhead (Const.Int 0) in
        for i = 0 to nhead - 1 do
          Array.unsafe_set data i
            (match Array.unsafe_get plan.head i with
            | Sconst c -> c
            | Svar v -> env.(v))
        done;
        emit (Tuple.make data)
    | Some fd ->
      (* Instantiate the head into the plan's reusable buffers, folding
         the tuple hash (the same fold as [Tuple.hash_key]) and the raw
         words as we go, and ask the filter before allocating anything.
         A [`Dup] verdict costs zero allocations; [`New] builds the
         tuple with the hash it already has. *)
      let vals = plan.head_vals and raws = plan.head_raws in
      fun () ->
        let h = ref nhead and exact = ref true in
        for i = 0 to nhead - 1 do
          let c =
            match Array.unsafe_get plan.head i with
            | Sconst c -> c
            | Svar v -> env.(v)
          in
          Array.unsafe_set vals i c;
          Array.unsafe_set raws i (Const.to_raw c);
          if not (Const.raw_exact c) then exact := false;
          h := (!h * 0x01000193) lxor Const.hash c
        done;
        let h = !h land max_int in
        (match fd ~exact:!exact ~hash:h raws with
        | `Dup -> ()
        | `New ->
          let data = Array.make nhead (Const.Int 0) in
          Array.blit vals 0 data 0 nhead;
          emit (Tuple.make_with_hash data h))
  in
  (* Build the scan as a chain of closures, innermost (the head emit)
     first: each atom's candidate callback is allocated once per run,
     not once per enumerated substitution prefix as a naive recursive
     scan would. *)
  let rec build atoms =
    match atoms with
    | [] -> emit_head
    | ca :: rest ->
      let probe = staged_probe ca ~sources rels in
      let continue_k = build rest in
      let key = ca.ca_keybuf in
      let slots = ca.ca_slots in
      let bind_pos = ca.ca_bind_pos and bind_var = ca.ca_bind_var in
      let check_pos = ca.ca_check_pos and check_var = ca.ca_check_var in
      let nchecks = Array.length check_pos in
      let guards = ca.ca_guards in
      let try_tuple t =
        plan.probes <- plan.probes + 1;
        for i = 0 to Array.length bind_pos - 1 do
          env.(Array.unsafe_get bind_var i) <-
            Tuple.get t (Array.unsafe_get bind_pos i)
        done;
        let rec checks_ok i =
          i >= nchecks
          || Const.equal
               (Tuple.get t (Array.unsafe_get check_pos i))
               env.(Array.unsafe_get check_var i)
             && checks_ok (i + 1)
        in
        if checks_ok 0 && guards_ok env guards then continue_k ()
      in
      fun () ->
        (* Instantiate the index key in the atom's reusable buffer: the
           positions were fixed at compile time, so a probe costs only
           the constant writes, no list or array allocation. *)
        for i = 0 to Array.length key - 1 do
          key.(i) <-
            (match Array.unsafe_get slots i with
            | Sconst c -> c
            | Svar v -> env.(v))
        done;
        probe key try_tuple
  in
  let start = build plan.atoms in
  let rec pre_ok gs =
    match gs with
    | [] -> true
    | cg :: rest -> guard_holds env cg && pre_ok rest
  in
  if pre_ok plan.pre_guards then start ()
