(* A tuple caches its structural hash at construction, so the hot
   paths — `seen` probes, index inserts, channel dedup — never rehash
   the constant array. Equality takes the physical-equality fast path
   first (interned tuples are shared), then compares cached hashes
   (cheap rejection), and only then the constants. *)
type t = {
  data : Const.t array;
  hcache : int;
}

(* Polynomial combination of per-constant hashes; cheap and stable.
   [hash_key] must agree with [hash] on the projected array so that
   index lookups by a bare key array land in the right bucket. *)
let hash_key key =
  let h = ref (Array.length key) in
  for i = 0 to Array.length key - 1 do
    h := (!h * 0x01000193) lxor Const.hash (Array.unsafe_get key i)
  done;
  !h land max_int

let make a = { data = a; hcache = hash_key a }

(* Trusted constructor for callers (Joiner) that already folded the
   hash while filling the array; must equal [hash_key a]. *)
let make_with_hash a h = { data = a; hcache = h }

let raw_exact t =
  let n = Array.length t.data in
  let rec go i =
    i >= n || (Const.raw_exact (Array.unsafe_get t.data i) && go (i + 1))
  in
  go 0
let of_list l = make (Array.of_list l)
let arity t = Array.length t.data
let get t i = t.data.(i)
let to_array t = Array.copy t.data
let hash t = t.hcache

let project t positions =
  make (Array.map (fun p -> t.data.(p)) positions)

let project_key t positions =
  Array.map (fun p -> t.data.(p)) positions

let hash_proj t positions =
  let h = ref (Array.length positions) in
  for i = 0 to Array.length positions - 1 do
    h :=
      (!h * 0x01000193)
      lxor Const.hash t.data.(Array.unsafe_get positions i)
  done;
  !h land max_int

let proj_equal t positions key =
  let n = Array.length positions in
  Array.length key = n
  &&
  let rec go i =
    i >= n
    || (Const.equal t.data.(Array.unsafe_get positions i)
          (Array.unsafe_get key i)
       && go (i + 1))
  in
  go 0

let compare a b =
  if a == b then 0
  else
    let la = Array.length a.data and lb = Array.length b.data in
    if la <> lb then Int.compare la lb
    else
      let rec go i =
        if i = la then 0
        else
          let c = Const.compare a.data.(i) b.data.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal a b =
  a == b
  || (a.hcache = b.hcache
     &&
     let la = Array.length a.data in
     la = Array.length b.data
     &&
     let rec go i =
       i >= la || (Const.equal a.data.(i) b.data.(i) && go (i + 1))
     in
     go 0)

let pp ppf t =
  Format.fprintf ppf "(@[%a@])"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Const.pp)
    t.data

let to_string t = Format.asprintf "%a" pp t
let of_ints is = of_list (List.map Const.int is)
let of_syms ss = of_list (List.map Const.sym ss)
