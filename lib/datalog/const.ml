type t =
  | Int of int
  | Sym of Symtab.sym

let int i = Int i
let sym s = Sym (Symtab.intern s)

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Sym x, Sym y -> Symtab.compare x y
  | Int _, Sym _ -> -1
  | Sym _, Int _ -> 1

let equal a b = compare a b = 0

(* splitmix64 finalizer, truncated to OCaml's 63-bit ints. Constants of
   different kinds are separated by a kind tag mixed into the seed. *)
let mix64 z =
  let z = z * 0x1E3779B97F4A7C15 in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let raw = function
  | Int i -> (i lsl 1) lor 0
  | Sym s -> (Symtab.to_int s lsl 1) lor 1

let to_raw = raw

(* [raw] shifts the payload left by one to make room for the kind bit,
   so integers with magnitude >= 2^61 wrap: two such ints can share a
   raw word. Symbols are dense small ints and always encode exactly.
   Slab relations only trust raw words for dedup when every stored
   constant is raw-exact. *)
let raw_exact = function
  | Sym _ -> true
  | Int i -> i >= -0x2000000000000000 && i < 0x2000000000000000

let hash c = mix64 (raw c) land max_int
let hash_seeded seed c = mix64 (raw c lxor mix64 seed) land max_int

(* Symbols that are not plain lowercase identifiers must be quoted so
   that printed constants reparse to themselves. *)
let plain_symbol s =
  let ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  String.length s > 0
  && s.[0] >= 'a'
  && s.[0] <= 'z'
  && String.for_all ident_char s

let pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Sym s ->
    let name = Symtab.name s in
    if plain_symbol name then Format.pp_print_string ppf name
    else Format.fprintf ppf "'%s'" name

let to_string c = Format.asprintf "%a" pp c
