let dependency_graph p =
  let derived = Program.derived_predicates p in
  List.map
    (fun pred ->
      let deps =
        Program.rules_for p pred
        |> List.concat_map (fun (r : Rule.t) ->
               List.map (fun (a : Atom.t) -> a.pred) (r.body @ r.neg))
        |> List.sort_uniq String.compare
      in
      (pred, deps))
    derived

let signed_dependency_graph p =
  let derived = Program.derived_predicates p in
  List.map
    (fun pred ->
      let deps =
        Program.rules_for p pred
        |> List.concat_map (fun (r : Rule.t) ->
               List.map (fun (a : Atom.t) -> (a.pred, false)) r.body
               @ List.map (fun (a : Atom.t) -> (a.pred, true)) r.neg)
        |> List.sort_uniq compare
      in
      (pred, deps))
    derived

(* Tarjan's algorithm over the derived-predicate dependency graph.
   Output order (components finished first) is bottom-up topological. *)
let sccs p =
  let graph = dependency_graph p in
  let derived = List.map fst graph in
  let succs pred =
    match List.assoc_opt pred graph with
    | Some deps -> List.filter (fun d -> List.mem_assoc d graph) deps
    | None -> []
  in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.add index v !counter;
    Hashtbl.add lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.add on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      components := List.sort String.compare comp :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v)
    derived;
  List.rev !components

let scc_of p =
  let comps = sccs p in
  fun pred -> List.find_opt (fun comp -> List.mem pred comp) comps

let mutually_recursive p a b =
  match scc_of p a with
  | Some comp when List.mem b comp ->
    (* Singleton components are recursive only with a self-loop. *)
    (match comp with
     | [ single ] when String.equal a b && String.equal single a ->
       Program.rules_for p a
       |> List.exists (fun (r : Rule.t) ->
              List.exists (fun (at : Atom.t) -> String.equal at.pred a) r.body)
     | _ -> true)
  | _ -> false

let recursive_atoms p (r : Rule.t) =
  List.filter
    (fun (a : Atom.t) -> mutually_recursive p r.head.pred a.pred)
    r.body

let is_recursive_rule p r = recursive_atoms p r <> []

let is_linear p =
  List.for_all
    (fun r -> List.length (recursive_atoms p r) <= 1)
    (Program.rules p)

type sirup = {
  pred : string;
  exit_rule : Rule.t;
  rec_rule : Rule.t;
  head_vars : string array;
  rec_atom : Atom.t;
  rec_vars : string array;
  base_atoms : Atom.t list;
}

let all_vars (a : Atom.t) =
  let exception Not_var in
  try
    Some
      (Array.map
         (function Term.Var v -> v | Term.Const _ -> raise Not_var)
         a.args)
  with Not_var -> None

type not_sirup =
  | Not_single_predicate of string list
  | Ill_formed of string
  | Wrong_rule_count of { recursive : int; exit : int }
  | Nonlinear_recursive_rule of Rule.t
  | Head_has_constants of Rule.t
  | Rec_atom_has_constants of Rule.t

let explain_not_sirup = function
  | Not_single_predicate [] -> "the program has no rules"
  | Not_single_predicate ps ->
    Printf.sprintf
      "a sirup must define exactly one predicate, found %d (%s)"
      (List.length ps) (String.concat ", " ps)
  | Ill_formed msg -> msg
  | Wrong_rule_count { recursive; exit } ->
    Printf.sprintf
      "a sirup must have one recursive and one exit rule (found %d/%d)"
      recursive exit
  | Nonlinear_recursive_rule r ->
    "the recursive rule must contain exactly one recursive atom: "
    ^ Rule.to_string r
  | Head_has_constants r ->
    "the recursive head's arguments must all be variables: "
    ^ Rule.to_string r
  | Rec_atom_has_constants r ->
    "the recursive body atom's arguments must all be variables: "
    ^ Rule.to_string r

let as_sirup p =
  let ( let* ) r f = Result.bind r f in
  let* () =
    match Program.derived_predicates p with
    | [ _ ] -> Ok ()
    | ps -> Error (Not_single_predicate ps)
  in
  let* () = Result.map_error (fun m -> Ill_formed m) (Program.check p) in
  let recs, exits =
    List.partition (is_recursive_rule p) (Program.rules p)
  in
  let* rec_rule, exit_rule =
    match recs, exits with
    | [ r ], [ e ] -> Ok (r, e)
    | _ ->
      Error
        (Wrong_rule_count
           { recursive = List.length recs; exit = List.length exits })
  in
  let* rec_atom =
    match recursive_atoms p rec_rule with
    | [ a ] -> Ok a
    | _ -> Error (Nonlinear_recursive_rule rec_rule)
  in
  let* head_vars =
    match all_vars rec_rule.head with
    | Some vs -> Ok vs
    | None -> Error (Head_has_constants rec_rule)
  in
  let* rec_vars =
    match all_vars rec_atom with
    | Some vs -> Ok vs
    | None -> Error (Rec_atom_has_constants rec_rule)
  in
  let base_atoms =
    List.filter (fun a -> not (Atom.equal a rec_atom)) rec_rule.body
  in
  let* () =
    if
      List.exists
        (fun (a : Atom.t) -> String.equal a.pred rec_rule.head.pred)
        base_atoms
    then Error (Nonlinear_recursive_rule rec_rule)
    else Ok ()
  in
  Ok
    {
      pred = rec_rule.head.pred;
      exit_rule;
      rec_rule;
      head_vars;
      rec_atom;
      rec_vars;
      base_atoms;
    }

let as_sirup_string p = Result.map_error explain_not_sirup (as_sirup p)
