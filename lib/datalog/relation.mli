(** Mutable sets of tuples with on-demand hash indexes.

    A relation stores tuples of one arity, deduplicated. Lookups by a
    pattern of bound positions build (and thereafter maintain) a hash
    index keyed by the projection on those positions.

    Storage layout (see DESIGN.md §11 and §16): elements live in a
    growable flat array ({!Vec}) in insertion order, and each index
    maps the {e hash} of a projection to a flat bucket of tuples —
    inserts and probes are allocation-free, with candidates re-checked
    against the key to absorb hash collisions.

    By default a relation is additionally {e slab-backed}: one unboxed
    int column per position mirrors [Const.to_raw] of every stored
    constant, dedup is by whole-tuple hash buckets verified against
    those columns, and index probes compare raw int words instead of
    chasing boxed tuple pointers. The raw encoding is only injective
    for {!Const.raw_exact} constants, so the first insert of an
    out-of-range integer permanently demotes the relation to the boxed
    path ([Tuple.proj_equal] verification, hashtable dedup) — results
    are identical either way. [~slab:false] opts out up front. *)

type t

val create : ?initial_size:int -> ?slab:bool -> arity:int -> unit -> t
(** [slab] defaults to [true]. *)

val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

val slabbed : t -> bool
(** Whether the relation currently keeps raw columns: [false] when
    created with [~slab:false] or after demotion by an inexact
    constant. *)

val mem : t -> Tuple.t -> bool

val mem_raw : t -> hash:int -> int array -> bool
(** [mem_raw r ~hash raws]: does [r] contain the tuple whose raw
    encoding is [raws] (one {!Const.to_raw} word per position, all
    {!Const.raw_exact}) and whose [Tuple.hash_key] is [hash]? The
    semi-naive duplicate filter: answers from the columns without
    materializing a tuple.
    @raise Invalid_argument if [not (slabbed r)] — callers must check
    first, since a demoted relation cannot answer from raw words. *)

val add : t -> Tuple.t -> bool
(** [add r t] inserts [t]; returns [true] iff [t] was new.
    @raise Invalid_argument on arity mismatch. *)

val add_all : t -> t -> int
(** [add_all dst src] inserts every tuple of [src] into [dst]; returns
    the number of tuples that were new. *)

val add_new : t -> Tuple.t -> unit
(** {!add} without the membership probe. {b Unsafe}: the caller must
    guarantee the tuple is absent from the relation — the semi-naive
    engine uses it to merge a delta whose tuples were already checked
    against the destination when they were derived. *)

val add_all_new : t -> t -> int
(** [add_new] for every tuple of [src]; returns their count. Same
    precondition: [src] and [dst] must be disjoint. *)

val iter : (Tuple.t -> unit) -> t -> unit
(** In insertion order. *)

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
(** In insertion order. *)

val to_list : t -> Tuple.t list

val sorted_elements : t -> Tuple.t list
(** Elements in {!Tuple.compare} order: a canonical form for equality
    tests and printing. *)

val lookup : t -> positions:int array -> key:Const.t array -> Tuple.t list
(** All tuples whose projection on [positions] equals [key]. The first
    call with a given [positions] pattern builds an index, which later
    {!add}s keep up to date. [positions = [||]] returns all tuples. *)

val iter_matching :
  t -> positions:int array -> key:Const.t array -> (Tuple.t -> unit) -> unit
(** Allocation-free {!lookup}: applies the function to each matching
    tuple directly from the index bucket, in insertion order. *)

val matcher :
  t -> positions:int array ->
  (Const.t array -> lo:int -> hi:int -> (Tuple.t -> unit) -> unit)
(** Staged, windowed {!iter_matching}: [matcher r ~positions] resolves
    the index at most once and returns a probe function, so the join
    inner loop ({!Joiner.run}) pays the index lookup per run instead
    of per candidate. [lo]/[hi] restrict the probe to tuples whose
    insertion position is in [\[lo, hi)] — the semi-naive
    Old/Delta/Current windows over one append-only store. Index
    buckets hold strictly ascending positions, so a windowed probe
    binary-searches the lower bound and walks only in-range
    candidates; on a slab-backed relation, windows narrower than a
    small cutoff are instead answered by scanning the raw key columns
    directly over [\[lo, hi)], skipping the index (and deferring its
    construction) entirely. Both paths enumerate the same tuples in
    the same order. The probe sees tuples added after staging; it is
    invalidated by {!compact} and {!clear}, and it owns a scratch key
    buffer, so it must not be re-entered from its own callback. *)

val iter_range : t -> lo:int -> hi:int -> (Tuple.t -> unit) -> unit
(** Iterate the tuples with insertion positions in [\[lo, hi)], in
    insertion order. *)

val copy : ?slab:bool -> t -> t
(** An independent relation with the same contents. When the layout is
    unchanged (the default) this is a structural clone — flat copies
    of the element vector, columns and dedup buckets, no rehashing —
    which is what keeps [Database.copy] cheap on big models. Passing
    [~slab] forces the layout of the copy, re-inserting elements when
    it differs. *)

val clear : t -> unit

val remove_all : t -> (Tuple.t -> bool) -> int
(** [remove_all r victim] deletes every tuple for which [victim] holds
    and returns how many were removed. Survivors keep their relative
    insertion order but their positions shift, and all materialized
    indexes are dropped (rebuilt lazily) — so, like {!compact}, this
    invalidates staged {!matcher}s and any window watermarks the caller
    holds over [r]. The incremental-maintenance layer is the intended
    caller; the semi-naive hot path never removes. *)

val compact : t -> unit
(** Release slack: shrink the element store to its current size and
    drop all materialized indexes (they are rebuilt on the next
    {!lookup} that needs them). Contents are unchanged. *)

val of_list : ?slab:bool -> arity:int -> Tuple.t list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val index_count : t -> int
(** Number of materialized indexes (for tests). *)
