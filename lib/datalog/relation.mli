(** Mutable sets of tuples with on-demand hash indexes.

    A relation stores tuples of one arity, deduplicated. Lookups by a
    pattern of bound positions build (and thereafter maintain) a hash
    index keyed by the projection on those positions.

    Storage layout (see DESIGN.md §11): elements live in a growable
    flat array ({!Vec}) in insertion order, and each index maps the
    {e hash} of a projection to a flat bucket of tuples — inserts and
    probes are allocation-free, with candidates re-checked against the
    key by [Tuple.proj_equal] to absorb hash collisions. *)

type t

val create : ?initial_size:int -> arity:int -> unit -> t
val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

val mem : t -> Tuple.t -> bool

val add : t -> Tuple.t -> bool
(** [add r t] inserts [t]; returns [true] iff [t] was new.
    @raise Invalid_argument on arity mismatch. *)

val add_all : t -> t -> int
(** [add_all dst src] inserts every tuple of [src] into [dst]; returns
    the number of tuples that were new. *)

val add_new : t -> Tuple.t -> unit
(** {!add} without the membership probe. {b Unsafe}: the caller must
    guarantee the tuple is absent from the relation — the semi-naive
    engine uses it to merge a delta whose tuples were already checked
    against the destination when they were derived. *)

val add_all_new : t -> t -> int
(** [add_new] for every tuple of [src]; returns their count. Same
    precondition: [src] and [dst] must be disjoint. *)

val iter : (Tuple.t -> unit) -> t -> unit
(** In insertion order. *)

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
(** In insertion order. *)

val to_list : t -> Tuple.t list

val sorted_elements : t -> Tuple.t list
(** Elements in {!Tuple.compare} order: a canonical form for equality
    tests and printing. *)

val lookup : t -> positions:int array -> key:Const.t array -> Tuple.t list
(** All tuples whose projection on [positions] equals [key]. The first
    call with a given [positions] pattern builds an index, which later
    {!add}s keep up to date. [positions = [||]] returns all tuples. *)

val iter_matching :
  t -> positions:int array -> key:Const.t array -> (Tuple.t -> unit) -> unit
(** Allocation-free {!lookup}: applies the function to each matching
    tuple directly from the index bucket, in insertion order. *)

val matcher :
  t -> positions:int array ->
  (Const.t array -> lo:int -> hi:int -> (Tuple.t -> unit) -> unit)
(** Staged, windowed {!iter_matching}: [matcher r ~positions] resolves
    (building if necessary) the index once and returns a probe
    function, so the join inner loop ({!Joiner.run}) pays the index
    lookup per run instead of per candidate. [lo]/[hi] restrict the
    probe to tuples whose insertion position is in [\[lo, hi)] — the
    semi-naive Old/Delta/Current windows over one append-only store.
    Index buckets hold strictly ascending positions, so a windowed
    probe binary-searches the lower bound and touches only in-range
    candidates. The probe sees tuples added after staging; it is
    invalidated by {!compact} and {!clear}. *)

val iter_range : t -> lo:int -> hi:int -> (Tuple.t -> unit) -> unit
(** Iterate the tuples with insertion positions in [\[lo, hi)], in
    insertion order. *)

val copy : t -> t
val clear : t -> unit

val remove_all : t -> (Tuple.t -> bool) -> int
(** [remove_all r victim] deletes every tuple for which [victim] holds
    and returns how many were removed. Survivors keep their relative
    insertion order but their positions shift, and all materialized
    indexes are dropped (rebuilt lazily) — so, like {!compact}, this
    invalidates staged {!matcher}s and any window watermarks the caller
    holds over [r]. The incremental-maintenance layer is the intended
    caller; the semi-naive hot path never removes. *)

val compact : t -> unit
(** Release slack: shrink the element store to its current size and
    drop all materialized indexes (they are rebuilt on the next
    {!lookup} that needs them). Contents are unchanged. *)

val of_list : arity:int -> Tuple.t list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val index_count : t -> int
(** Number of materialized indexes (for tests). *)
