type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;  (* fills unused capacity; never observable *)
}

let create ?(capacity = 8) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length v = v.len
let is_empty v = v.len = 0
let capacity v = Array.length v.data

let grow v =
  let cap = Array.length v.data in
  let fresh = Array.make (2 * cap) v.dummy in
  Array.blit v.data 0 fresh 0 v.len;
  v.data <- fresh

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  v.data.(i)

let unsafe_get v i = Array.unsafe_get v.data i

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set: index out of bounds";
  v.data.(i) <- x

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let fold f v init =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f (Array.unsafe_get v.data i) !acc
  done;
  !acc

let exists p v =
  let rec go i = i < v.len && (p (Array.unsafe_get v.data i) || go (i + 1)) in
  go 0

let for_all p v =
  let rec go i = i >= v.len || (p (Array.unsafe_get v.data i) && go (i + 1)) in
  go 0

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

let copy v = { data = Array.copy v.data; len = v.len; dummy = v.dummy }

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let compact v =
  if v.len < Array.length v.data then
    v.data <- Array.sub v.data 0 (max v.len 1)
