(** Compiled rule plans and substitution enumeration.

    A plan fixes the join order (the textual body order), the variable
    numbering, and the placement of hash guards. At run time each body
    atom is given a {!source} — the semi-naive engine uses this to
    evaluate the delta variants of a rule — and the plan enumerates
    every satisfying ground substitution exactly once, calling [emit]
    with the instantiated head tuple. *)

type source =
  | Old  (** The relation as of the previous iteration. *)
  | Delta  (** Tuples new in the current iteration. *)
  | Current  (** [Old ∪ Delta]. *)

type plan

val compile : ?pushdown:bool -> ?reorder:bool -> Rule.t -> plan
(** Compile a rule. [pushdown] (default [true]) places each hash guard
    at the earliest point where its variables are bound; with [false]
    guards run only after the full join, which reproduces the
    "selection cannot be pushed into the joins" worst case discussed at
    the end of Section 3 of the paper. [reorder] (default [false])
    scans the body in a greedy bound-variables-first order instead of
    the textual one; the enumerated substitution set — and the delta
    semantics of {!run}'s per-atom sources, which are indexed by the
    {e original} body positions — is unchanged.
    @raise Invalid_argument if the rule is unsafe. *)

val rule_of : plan -> Rule.t
val var_count : plan -> int

val probes : plan -> int
(** Cumulative number of candidate tuples scanned by {!run} for this
    plan — one probe per tuple pulled from an index lookup, whether or
    not it survived the equality checks and guards. A cheap,
    always-maintained effort counter for the observability layer. *)

type window = {
  w_rel : Relation.t;  (** One append-only store for the predicate. *)
  w_old : int;  (** Old = insertion positions [\[0, w_old)]. *)
  w_cur : int;
      (** Delta = [\[w_old, w_cur)]; Current = [\[0, w_cur)]. Tuples at
          positions [>= w_cur] — appended by emits during the run — are
          invisible to every source: they are the next delta. *)
}
(** The three semi-naive sources as windows over one relation (see
    DESIGN.md §11): instead of materializing Old, Delta and Current as
    separate stores and merging after every iteration, the engine keeps
    a single insertion-ordered relation per predicate and two
    watermarks. *)

type relations = { window_of : string -> window option }
(** [None] = the predicate is empty/unknown. *)

val window_all : Relation.t -> window
(** The whole relation as Old (empty delta) — what a non-incremental
    caller wants for [Current] scans. *)

val current_of : (string -> Relation.t option) -> relations
(** Wrap a plain lookup: every predicate's full contents under
    {!window_all}. *)

val run :
  plan ->
  sources:source array ->
  ?fast_dedup:(exact:bool -> hash:int -> int array -> [ `Dup | `New ]) ->
  relations ->
  emit:(Tuple.t -> unit) ->
  unit
(** Enumerate the substitutions of the plan's rule, reading body atom
    [i] from [sources.(i)], and call [emit] once per successful ground
    substitution (guards included) with the head instance.

    [fast_dedup], when provided, is consulted once per firing {e
    before} the head tuple is materialized: it receives the head
    instance's raw words ([Const.to_raw] per position, in a buffer
    owned by the plan — read it synchronously, don't retain it), its
    [Tuple.hash_key], and whether every constant is
    [Const.raw_exact]. Answering [`Dup] suppresses the firing with
    zero allocation; [`New] lets the tuple be built (reusing the
    already-folded hash) and passed to [emit]. The semi-naive engine
    implements it with {!Relation.mem_raw} on the head relation and
    counts firings there, so callbacks see every firing exactly once
    whichever path it takes.
    @raise Invalid_argument if [sources] length differs from the body
    length. *)
