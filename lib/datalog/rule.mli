(** Rules, optionally carrying hash guards.

    A guard is the evaluable form of the paper's "[h(v(r)) = i]"
    conjunct: a named function applied to the values bound to a sequence
    of variables, compared against an expected result. Guards keep the
    sequential engine ignorant of the parallel framework while letting
    rewritten per-processor programs run on it unchanged. *)

type guard = {
  gname : string;  (** Printable name of the hash function, e.g. ["h"]. *)
  gvars : string array;  (** The discriminating sequence of variables. *)
  gfn : Const.t array -> int;  (** The discriminating function itself. *)
  gexpect : int;  (** The processor id the hash must equal. *)
}

type t = {
  head : Atom.t;
  body : Atom.t list;  (** Positive body atoms. *)
  neg : Atom.t list;
      (** Negated body atoms ([not p(X̄)]). The evaluation engines
          reject rules with negation ({!Program.check}); the static
          checker analyses them (safety, stratifiability). *)
  guards : guard list;
  loc : int option;  (** 1-based source line, when parsed from text. *)
}

val make : ?loc:int -> ?neg:Atom.t list -> ?guards:guard list ->
  Atom.t -> Atom.t list -> t

val with_loc : int -> t -> t
(** Attach a source line to a programmatically built rule. *)

val guard :
  name:string -> vars:string list -> fn:(Const.t array -> int) -> expect:int
  -> guard

val head_vars : t -> string list
val body_vars : t -> string list
(** Variables of the positive body atoms only. *)

val neg_vars : t -> string list
(** Variables of the negated body atoms. *)

val vars : t -> string list
(** All head and positive-body variables, first-occurrence order (head
    first). *)

val is_fact : t -> bool
(** True when the body is empty and the head is ground. *)

val is_safe : t -> bool
(** Every head, negated-atom and guard variable occurs in the positive
    body (range restriction). *)

val guard_ok : guard -> (string * Const.t) list -> bool option
(** [guard_ok g env] is [None] if some guard variable is unbound in
    [env], otherwise [Some b] where [b] says whether the guard holds. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
