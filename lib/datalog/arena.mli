(** A per-run tuple-interning arena (hash-consing pool).

    [intern] maps every structurally equal tuple to one canonical
    physical value, so downstream equality checks — relation [seen]
    probes, channel dedup keys, outbox filters — hit {!Tuple.equal}'s
    physical-equality fast path.

    Arenas are deliberately {e not} global: the domain runtime runs
    one semi-naive engine per processor on concurrent domains, and a
    shared intern table would be a data race. Each {!Seminaive.t}
    owns its own arena; tuples from different arenas still compare
    correctly because {!Tuple.equal} falls back to the cached-hash +
    structural comparison. *)

type t

val create : ?initial_size:int -> unit -> t

val intern : t -> Tuple.t -> Tuple.t
(** The canonical physical representative of the tuple: the argument
    itself on first sight, the previously interned copy afterwards. *)

val size : t -> int
(** Distinct tuples interned. *)

val hits : t -> int
(** Interns that found an existing canonical tuple. *)

val misses : t -> int
(** Interns that admitted a new canonical tuple. *)

val clear : t -> unit
