type error = {
  line : int;
  column : int;
  message : string;
}

let pp_error ppf e =
  Format.fprintf ppf "parse error at line %d, column %d: %s" e.line e.column
    e.message

exception Parse_error of error

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string  (* lowercase identifier *)
  | Variable of string  (* uppercase or '_'-leading identifier *)
  | Integer of int
  | Quoted of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Arrow  (* :- *)
  | Eof

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let lexer src = { src; pos = 0; line = 1; bol = 0 }

let fail lx message =
  raise (Parse_error { line = lx.line; column = lx.pos - lx.bol + 1; message })

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with
   | Some '\n' ->
     lx.line <- lx.line + 1;
     lx.bol <- lx.pos + 1
   | _ -> ());
  lx.pos <- lx.pos + 1

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_space lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_space lx
  | Some '%' ->
    skip_line lx;
    skip_space lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/'
    ->
    skip_line lx;
    skip_space lx
  | _ -> ()

and skip_line lx =
  match peek_char lx with
  | Some '\n' | None -> ()
  | Some _ ->
    advance lx;
    skip_line lx

let lex_while lx pred =
  let start = lx.pos in
  let rec go () =
    match peek_char lx with
    | Some c when pred c ->
      advance lx;
      go ()
    | _ -> ()
  in
  go ();
  String.sub lx.src start (lx.pos - start)

let next_token lx =
  skip_space lx;
  match peek_char lx with
  | None -> Eof
  | Some '(' ->
    advance lx;
    Lparen
  | Some ')' ->
    advance lx;
    Rparen
  | Some ',' ->
    advance lx;
    Comma
  | Some '.' ->
    advance lx;
    Dot
  | Some ':' ->
    advance lx;
    (match peek_char lx with
     | Some '-' ->
       advance lx;
       Arrow
     | _ -> fail lx "expected '-' after ':'")
  | Some '\'' ->
    advance lx;
    let s = lex_while lx (fun c -> c <> '\'' && c <> '\n') in
    (match peek_char lx with
     | Some '\'' ->
       advance lx;
       Quoted s
     | _ -> fail lx "unterminated quoted symbol")
  | Some '-' ->
    advance lx;
    (match peek_char lx with
     | Some c when is_digit c ->
       let digits = lex_while lx is_digit in
       Integer (-int_of_string digits)
     | _ -> fail lx "expected digits after '-'")
  | Some c when is_digit c -> Integer (int_of_string (lex_while lx is_digit))
  | Some c when is_ident_start c ->
    let word = lex_while lx is_ident_char in
    if c = '_' || (c >= 'A' && c <= 'Z') then Variable word else Ident word
  | Some c -> fail lx (Printf.sprintf "unexpected character %C" c)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type state = {
  lx : lexer;
  mutable tok : token;
}

let state src =
  let lx = lexer src in
  { lx; tok = next_token lx }

let bump st = st.tok <- next_token st.lx

let parse_term st =
  match st.tok with
  | Variable v ->
    bump st;
    Term.var v
  | Integer i ->
    bump st;
    Term.int i
  | Ident s ->
    bump st;
    Term.sym s
  | Quoted s ->
    bump st;
    Term.sym s
  | _ -> fail st.lx "expected a term"

(* The argument list of an atom, after the '(' has been consumed. *)
let parse_args st =
  let rec args acc =
    let t = parse_term st in
    match st.tok with
    | Comma ->
      bump st;
      args (t :: acc)
    | Rparen ->
      bump st;
      List.rev (t :: acc)
    | _ -> fail st.lx "expected ',' or ')'"
  in
  args []

let parse_atom st =
  match st.tok with
  | Ident pred ->
    bump st;
    if st.tok = Lparen then begin
      bump st;
      Atom.make pred (parse_args st)
    end
    else Atom.make pred []
  | _ -> fail st.lx "expected a predicate symbol"

(* A body literal: an atom, optionally negated with the keyword [not].
   [not] followed by '(' or by ',' / '.' keeps its old reading as a
   predicate symbol, so existing programs parse unchanged. *)
let parse_literal st =
  match st.tok with
  | Ident "not" ->
    bump st;
    (match st.tok with
     | Ident _ -> `Neg (parse_atom st)
     | Lparen ->
       bump st;
       `Pos (Atom.make "not" (parse_args st))
     | _ -> `Pos (Atom.make "not" []))
  | _ -> `Pos (parse_atom st)

let parse_clause st =
  (* The current token is the head's predicate symbol; the lexer's line
     counter still points at it. *)
  let loc = st.lx.line in
  let head = parse_atom st in
  match st.tok with
  | Dot ->
    bump st;
    Rule.make ~loc head []
  | Arrow ->
    bump st;
    let rec body pos neg =
      let lit = parse_literal st in
      let pos, neg =
        match lit with
        | `Pos a -> (a :: pos, neg)
        | `Neg a -> (pos, a :: neg)
      in
      match st.tok with
      | Comma ->
        bump st;
        body pos neg
      | Dot ->
        bump st;
        (List.rev pos, List.rev neg)
      | _ -> fail st.lx "expected ',' or '.'"
    in
    let pos, neg = body [] [] in
    Rule.make ~loc ~neg head pos
  | _ -> fail st.lx "expected '.' or ':-'"

let parse_program st =
  let rec go rules facts =
    match st.tok with
    | Eof -> Program.make ~facts:(List.rev facts) (List.rev rules)
    | _ ->
      let clause = parse_clause st in
      if clause.body = [] && clause.neg = [] then
        match Atom.to_tuple clause.head with
        | Some t -> go rules ((clause.head.pred, t) :: facts)
        | None -> fail st.lx "fact must be ground"
      else go (clause :: rules) facts
  in
  go [] []

let run parse src =
  try Ok (parse (state src)) with Parse_error e -> Error e

let finish st v =
  match st.tok with Eof -> v | _ -> fail st.lx "trailing input"

let program src = run (fun st -> finish st (parse_program st)) src
let rule src = run (fun st -> let r = parse_clause st in finish st r) src
let atom src = run (fun st -> let a = parse_atom st in finish st a) src

let tuples src =
  run
    (fun st ->
      let p = finish st (parse_program st) in
      if Program.rules p <> [] then fail st.lx "expected only ground facts"
      else p.facts)
    src

let exn_of = function
  | Ok v -> v
  | Error e -> invalid_arg (Format.asprintf "%a" pp_error e)

let program_exn src = exn_of (program src)
let rule_exn src = exn_of (rule src)
let atom_exn src = exn_of (atom src)
