(** Database constants.

    A constant is either an integer or an interned symbol (a lowercase
    identifier or quoted string in the concrete syntax). Constants are
    totally ordered and hashable, so they can key relations and be fed
    to discriminating functions. *)

type t =
  | Int of int
  | Sym of Symtab.sym

val int : int -> t
val sym : string -> t
(** [sym s] interns [s] and wraps it. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_raw : t -> int
(** The flat one-word encoding slab columns store: the payload shifted
    left by one, with the low bit distinguishing ints from symbols.
    Only injective on raw-exact constants — see {!raw_exact}. *)

val raw_exact : t -> bool
(** Whether {!to_raw} encodes this constant without losing bits.
    Symbols always; integers iff they fit in 62 bits. Slab relations
    demote themselves to boxed dedup the first time a non-exact
    constant is stored, so raw-word comparisons stay sound. *)

val hash : t -> int
(** A well-mixed hash (splitmix64 finalizer), suitable as the basis of
    discriminating functions: consecutive integers do not map to
    consecutive hashes. *)

val hash_seeded : int -> t -> int
(** [hash_seeded seed c] is an independent hash family member; distinct
    seeds give (practically) independent functions. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
