(** A blocking [datalogd] client connection.

    Used by [datalogd --connect] (the CLI client mode), the [@serve]
    smoke test, and the [bench serve] load generator. One [t] is one
    session — not thread-safe; give each client thread its own
    connection. *)

type t

type reply = {
  head : Protocol.head;  (** Classified head line. *)
  rows : string list;  (** ROW payloads (RESULT with [rows=true]). *)
  raw : string list;  (** Every raw reply line, for byte-exact replay checks. *)
}

type connect_result =
  | Conn of t
  | Conn_busy of { reason : string; retry_after_ms : int }
      (** The server refused the session at accept time (session cap or
          drain) — a clean, immediate rejection. *)
  | Conn_error of string

val connect : ?attempts:int -> ?delay_ms:int -> Server.addr -> connect_result
(** Connect and consume the greeting. Transient failures (daemon still
    binding, backlog full) are retried up to [attempts] times (default
    40) with [delay_ms] (default 25) between tries, so a test can start
    the daemon and connect without an external readiness barrier. *)

val close : t -> unit

val send : t -> ?payload:string -> string -> unit
(** Write a request line; [payload] appends LOAD/FACTS body lines and
    the closing ["."] terminator. *)

val read_reply : t -> (reply, string) result
(** Read one complete reply — a single line, or a
    [RESULT]/[PARTIAL] … [END] block. *)

val request : t -> ?payload:string -> string -> (reply, string) result
(** {!send} then {!read_reply}. *)

type attempt_outcome = {
  reply : reply;  (** Final reply — anything but BUSY/RETRY, or the
                      last BUSY/RETRY when attempts ran out. *)
  attempts : int;
  busy_replies : int;
  retry_replies : int;
}

val request_retry :
  ?max_attempts:int ->
  ?base_ms:int ->
  ?cap_ms:int ->
  ?jitter:(int -> int) ->
  t ->
  ?payload:string ->
  string ->
  (attempt_outcome, string) result
(** {!request}, resending on [BUSY] and [RETRY] with exponential
    backoff: attempt [k] sleeps [max hint (min cap_ms (base_ms * 2^k))
    + jitter k] milliseconds, where [hint] is the server's
    [retry-after-ms]. [jitter] defaults to none — pass a seeded
    generator for decorrelated load tests (deterministic, so runs
    reproduce). Since a [QUERY] is idempotent under its id, resending
    never double-executes. *)
