(** The [datalogd] wire protocol, version 2.

    A line protocol over a stream socket: LF-terminated UTF-8 lines of
    space-separated tokens, options as [key=value] tokens (values never
    contain spaces — the attached statistics JSON is space-free by
    construction). [LOAD], [FACTS], [UPDATE] and [RETRACT] are followed
    by a payload — raw program / fact lines — terminated by a line
    holding a single [.].

    {v
    request  = HELLO [tenant=NAME]
             | LOAD NAME          ; + program lines, then "."
             | FACTS NAME         ; + fact lines, then "."
             | UPDATE id=ID prog=NAME   ; + signed fact lines, then "."
             | RETRACT id=ID prog=NAME  ; + signed fact lines, then "."
             | QUERY id=ID prog=NAME [goal=PRED] [rows=true]
                     [live=true] [stats=true] [deadline-ms=N]
                     [max-store=N] [nprocs=N] [scheme=general|auto]
                     [runtime=sim|domain]
             | STATS | PING | QUIT
    reply    = DATALOGD/2 READY                        ; greeting
             | OK op k=v...                            ; hello/load/facts/
                                                       ; update/retract
             | RESULT id=I status=ok rows=N scheme=S [stats=J]
             | PARTIAL id=I reason=K rows=0 scheme=S [stats=J]
             | ROW tuple                               ; with rows=true
             | END id=I                                ; closes RESULT/PARTIAL
             | BUSY [id=I] reason=K retry-after-ms=M   ; admission reject
             | RETRY id=I retry-after-ms=M             ; id still in flight
             | STATS {json} | PONG | BYE reason=K | ERR code message...
    v}

    Version 2 (PR 9) adds the live-update verbs; every version-1 verb
    and reply is unchanged. An [UPDATE] payload line is a fact with an
    optional sign — [+edge(1,2).] inserts, [-edge(1,2).] deletes,
    unsigned lines insert; [RETRACT] is the same verb with the default
    sign flipped to delete. The batch is folded into the dataset's
    resident maintenance session and answered
    [OK update prog=P id=I added=N removed=N] with the {e net} model
    change. [QUERY ... live=true] reads that maintained model instead
    of evaluating from scratch (scheme reported as [live]).

    A [QUERY], [UPDATE] or [RETRACT] is idempotent under its [id]: a
    completed request's reply is cached per (tenant, id) and replayed
    byte-identically, so a client may retry a lost or rejected request
    with the same id and never double-executes (or double-applies)
    it. [RESULT]/[PARTIAL] open a multi-line reply closed by [END];
    every other reply is a single line. *)

val version : int

val max_payload_lines : int
(** Upper bound on LOAD/FACTS payload lines accepted by the server. *)

val valid_name : string -> bool
(** Names (tenants, programs, request ids, goals) are nonempty
    [[A-Za-z0-9_.-]] strings of at most 128 bytes, so they are always
    single reply tokens. *)

(** {1 Requests} *)

type query = {
  q_id : string;  (** Idempotency key, unique per tenant per request. *)
  q_prog : string;  (** Resident dataset to query. *)
  q_goal : string option;  (** Restrict counted/returned rows to one predicate. *)
  q_rows : bool;  (** Send [ROW] lines (default: counts only). *)
  q_stats : bool;  (** Attach versioned [Stats.to_json] to the head line. *)
  q_live : bool;
      (** Serve from the dataset's resident maintenance session instead
          of evaluating from scratch. The per-request knobs
          ([deadline-ms], [nprocs], [scheme], [runtime], [stats]) do not
          apply: a live model is a property of the dataset. *)
  q_deadline_ms : int option;  (** Wall-clock budget, clamped to the server cap. *)
  q_max_store : int option;  (** Per-processor store budget, clamped likewise. *)
  q_nprocs : int option;  (** Processor count (default: server setting). *)
  q_scheme : [ `General | `Auto ];
  q_runtime : [ `Default | `Sim | `Domain ];
}

type update = {
  u_id : string;  (** Idempotency key, unique per tenant per request. *)
  u_prog : string;  (** Resident dataset to update. *)
}
(** Head line of [UPDATE] and [RETRACT]; the signed facts follow as the
    payload. *)

type request =
  | Hello of string option  (** Optional tenant name. *)
  | Load of string
  | Facts of string
  | Query of query
  | Update of update  (** Unsigned payload lines insert. *)
  | Retract of update  (** Unsigned payload lines delete. *)
  | Stats
  | Ping
  | Quit

val parse_request : string -> (request, string) result

val parse_updates :
  default:Datalog.Delta.op ->
  string ->
  (Datalog.Delta.update list, string) result
(** Parse an UPDATE/RETRACT payload: one or more facts per line, each
    line optionally signed with a leading [+] (insert) or [-] (delete);
    unsigned lines take [default]. Order is preserved — the net effect
    of the batch is last-operation-wins per tuple. *)

(** {1 Replies} *)

type head =
  | Ready of { proto : int }
  | Okay of { op : string; kv : (string * string) list }
  | Result_head of {
      id : string;
      partial : bool;
      reason : string option;  (** Set iff [partial]. *)
      rows : int;
      scheme : string;
      stats : string option;
    }
  | Row of string
  | End_of_result of { id : string }
  | Busy of { id : string option; reason : string; retry_after_ms : int }
  | Retry of { id : string; retry_after_ms : int }
  | Stats_reply of string
  | Pong
  | Bye of { reason : string }
  | Err of { code : string; msg : string }

val classify : string -> (head, string) result
(** Parse one reply line (client side). *)

(** {1 Reply formatting (server side)} *)

val greeting : string
val busy : ?id:string -> reason:string -> retry_after_ms:int -> unit -> string
val retry : id:string -> retry_after_ms:int -> string

val result_head :
  ?stats:string -> id:string -> rows:int -> scheme:string -> unit -> string

val partial_head :
  ?stats:string -> id:string -> reason:string -> scheme:string -> unit -> string

val end_of_result : id:string -> string
val row : string -> string
val err : code:string -> string -> string
val bye : reason:string -> string

(** {1 Token helpers} *)

val tokens : string -> string list
val kv_list : string list -> (string * string) list
val find_kv : (string * string) list -> string -> string option
