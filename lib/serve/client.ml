type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

type reply = {
  head : Protocol.head;
  rows : string list;
  raw : string list;
}

type connect_result =
  | Conn of t
  | Conn_busy of { reason : string; retry_after_ms : int }
  | Conn_error of string

let sockaddr = function
  | Server.Unix_sock path -> Unix.ADDR_UNIX path
  | Server.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let domain = function
  | Server.Unix_sock _ -> Unix.PF_UNIX
  | Server.Tcp _ -> Unix.PF_INET

(* Retryable connect errors: the daemon may still be binding (startup
   race) or its accept backlog may be momentarily full. *)
let transient = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EAGAIN
  | Unix.EINTR ->
    true
  | _ -> false

let connect ?(attempts = 40) ?(delay_ms = 25) addr =
  let rec go k =
    let fd = Unix.socket (domain addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd (sockaddr addr) with
    | () -> (
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      match input_line ic with
      | exception End_of_file ->
        Unix.close fd;
        Conn_error "connection closed before greeting"
      | line -> (
        match Protocol.classify line with
        | Ok (Protocol.Ready { proto }) when proto = Protocol.version ->
          Conn { fd; ic; oc }
        | Ok (Protocol.Ready { proto }) ->
          Unix.close fd;
          Conn_error
            (Printf.sprintf "protocol mismatch: server speaks %d, client %d"
               proto Protocol.version)
        | Ok (Protocol.Busy { reason; retry_after_ms; _ }) ->
          Unix.close fd;
          Conn_busy { reason; retry_after_ms }
        | Ok _ | Error _ ->
          Unix.close fd;
          Conn_error ("unexpected greeting: " ^ line)))
    | exception Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      if transient e && k < attempts then begin
        Unix.sleepf (float_of_int delay_ms /. 1000.);
        go (k + 1)
      end
      else
        Conn_error
          (Printf.sprintf "cannot connect after %d attempts: %s" k
             (Unix.error_message e))
  in
  go 1

let close t =
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t ?payload line =
  output_string t.oc line;
  output_char t.oc '\n';
  (match payload with
   | None -> ()
   | Some text ->
     output_string t.oc text;
     if text <> "" && text.[String.length text - 1] <> '\n' then
       output_char t.oc '\n';
     output_string t.oc ".\n");
  flush t.oc

(* Read one complete reply: a single line, or RESULT/PARTIAL followed
   by ROW lines and closed by END. *)
let read_reply t =
  match input_line t.ic with
  | exception End_of_file -> Error "connection closed"
  | exception Sys_error e -> Error e
  | line -> (
    match Protocol.classify line with
    | Error e -> Error e
    | Ok (Protocol.Result_head _ as head) ->
      let rec body rows raw =
        match input_line t.ic with
        | exception End_of_file -> Error "connection closed mid-reply"
        | exception Sys_error e -> Error e
        | l -> (
          match Protocol.classify l with
          | Ok (Protocol.Row r) -> body (r :: rows) (l :: raw)
          | Ok (Protocol.End_of_result _) ->
            Ok { head; rows = List.rev rows; raw = List.rev (l :: raw) }
          | Ok _ -> Error ("unexpected line inside result: " ^ l)
          | Error e -> Error e)
      in
      body [] [ line ]
    | Ok head -> Ok { head; rows = []; raw = [ line ] })

let request t ?payload line =
  send t ?payload line;
  read_reply t

(* ---------------------------------------------------------------- *)
(* Retry with jittered exponential backoff                           *)
(* ---------------------------------------------------------------- *)

type attempt_outcome = {
  reply : reply;
  attempts : int;
  busy_replies : int;
  retry_replies : int;
}

let request_retry ?(max_attempts = 8) ?(base_ms = 5) ?(cap_ms = 500)
    ?(jitter = fun _ -> 0) t ?payload line =
  let policy = Pardatalog.Backoff.make ~base_ms ~cap_ms ~jitter () in
  let rec go k busy retries =
    match request t ?payload line with
    | Error e -> Error e
    | Ok reply -> (
      let again hint_ms busy retries =
        if k + 1 >= max_attempts then
          Ok { reply; attempts = k + 1; busy_replies = busy;
               retry_replies = retries }
        else begin
          Pardatalog.Backoff.sleep ~hint_ms policy k;
          go (k + 1) busy retries
        end
      in
      match reply.head with
      | Protocol.Busy { retry_after_ms; _ } ->
        again retry_after_ms (busy + 1) retries
      | Protocol.Retry { retry_after_ms; _ } ->
        again retry_after_ms busy (retries + 1)
      | _ ->
        Ok { reply; attempts = k + 1; busy_replies = busy;
             retry_replies = retries })
  in
  go 0 0 0
