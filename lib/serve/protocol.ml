let version = 2

let max_payload_lines = 100_000

(* ---------------------------------------------------------------- *)
(* Names and key=value tokens                                        *)
(* ---------------------------------------------------------------- *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

let valid_name s =
  s <> "" && String.length s <= 128 && String.for_all is_name_char s

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(* A token [k=v]; tokens without '=' are returned as [(tok, "")]. *)
let kv_of_token tok =
  match String.index_opt tok '=' with
  | None -> (tok, "")
  | Some i ->
    (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))

let kv_list toks = List.map kv_of_token toks
let find_kv kvs k = List.assoc_opt k kvs

let int_kv kvs k =
  match find_kv kvs k with
  | None -> Ok None
  | Some v -> (
    match int_of_string_opt v with
    | Some n -> Ok (Some n)
    | None -> Error (Printf.sprintf "%s must be an integer, got %s" k v))

(* ---------------------------------------------------------------- *)
(* Requests                                                          *)
(* ---------------------------------------------------------------- *)

type query = {
  q_id : string;
  q_prog : string;
  q_goal : string option;
  q_rows : bool;
  q_stats : bool;
  q_live : bool;
  q_deadline_ms : int option;
  q_max_store : int option;
  q_nprocs : int option;
  q_scheme : [ `General | `Auto ];
  q_runtime : [ `Default | `Sim | `Domain ];
}

type update = {
  u_id : string;
  u_prog : string;
}

type request =
  | Hello of string option
  | Load of string
  | Facts of string
  | Query of query
  | Update of update
  | Retract of update
  | Stats
  | Ping
  | Quit

let ( let* ) = Result.bind

let parse_query kvs =
  let* q_id =
    match find_kv kvs "id" with
    | Some id when valid_name id -> Ok id
    | Some id -> Error (Printf.sprintf "bad id %S" id)
    | None -> Error "QUERY requires id=ID"
  in
  let* q_prog =
    match find_kv kvs "prog" with
    | Some p when valid_name p -> Ok p
    | Some p -> Error (Printf.sprintf "bad prog %S" p)
    | None -> Error "QUERY requires prog=NAME"
  in
  let* q_goal =
    match find_kv kvs "goal" with
    | None -> Ok None
    | Some g when valid_name g -> Ok (Some g)
    | Some g -> Error (Printf.sprintf "bad goal %S" g)
  in
  let flag k =
    match find_kv kvs k with
    | Some "true" -> Ok true
    | Some "false" | None -> Ok false
    | Some v -> Error (Printf.sprintf "%s must be true or false, got %s" k v)
  in
  let* q_rows = flag "rows" in
  let* q_stats = flag "stats" in
  let* q_live = flag "live" in
  let pos k = function
    | Some n when n < 1 -> Error (Printf.sprintf "%s must be >= 1" k)
    | v -> Ok v
  in
  let* q_deadline_ms = Result.bind (int_kv kvs "deadline-ms") (pos "deadline-ms") in
  let* q_max_store = Result.bind (int_kv kvs "max-store") (pos "max-store") in
  let* q_nprocs = Result.bind (int_kv kvs "nprocs") (pos "nprocs") in
  let* q_scheme =
    match find_kv kvs "scheme" with
    | None | Some "general" -> Ok `General
    | Some "auto" -> Ok `Auto
    | Some s -> Error (Printf.sprintf "unknown scheme %s (general or auto)" s)
  in
  let* q_runtime =
    match find_kv kvs "runtime" with
    | None -> Ok `Default
    | Some "sim" -> Ok `Sim
    | Some "domain" -> Ok `Domain
    | Some r -> Error (Printf.sprintf "unknown runtime %s (sim or domain)" r)
  in
  Ok
    (Query
       {
         q_id; q_prog; q_goal; q_rows; q_stats; q_live; q_deadline_ms;
         q_max_store; q_nprocs; q_scheme; q_runtime;
       })

(* UPDATE and RETRACT share the id=/prog= shape; the payload that
   follows carries the signed facts. *)
let parse_update ~verb kvs k =
  let* u_id =
    match find_kv kvs "id" with
    | Some id when valid_name id -> Ok id
    | Some id -> Error (Printf.sprintf "bad id %S" id)
    | None -> Error (Printf.sprintf "%s requires id=ID" verb)
  in
  let* u_prog =
    match find_kv kvs "prog" with
    | Some p when valid_name p -> Ok p
    | Some p -> Error (Printf.sprintf "bad prog %S" p)
    | None -> Error (Printf.sprintf "%s requires prog=NAME" verb)
  in
  Ok (k { u_id; u_prog })

let parse_request line =
  match tokens line with
  | [] -> Error "empty request"
  | verb :: rest -> (
    let kvs = kv_list rest in
    match verb with
    | "HELLO" -> (
      match rest with
      | [] -> Ok (Hello None)
      | [ _ ] -> (
        match find_kv kvs "tenant" with
        | Some t when valid_name t -> Ok (Hello (Some t))
        | Some t -> Error (Printf.sprintf "bad tenant %S" t)
        | None -> Error "usage: HELLO [tenant=NAME]")
      | _ -> Error "usage: HELLO [tenant=NAME]")
    | "LOAD" -> (
      match rest with
      | [ name ] when valid_name name -> Ok (Load name)
      | _ -> Error "usage: LOAD NAME (then program lines, then a '.' line)")
    | "FACTS" -> (
      match rest with
      | [ name ] when valid_name name -> Ok (Facts name)
      | _ -> Error "usage: FACTS NAME (then fact lines, then a '.' line)")
    | "QUERY" -> parse_query kvs
    | "UPDATE" -> parse_update ~verb:"UPDATE" kvs (fun u -> Update u)
    | "RETRACT" -> parse_update ~verb:"RETRACT" kvs (fun u -> Retract u)
    | "STATS" -> Ok Stats
    | "PING" -> Ok Ping
    | "QUIT" -> Ok Quit
    | v -> Error (Printf.sprintf "unknown verb %s" v))

(* One signed fact line: an optional leading '+' (insert) or '-'
   (delete) followed by ordinary fact syntax. A line may carry several
   facts; all take the line's sign. Unsigned lines take [default] —
   Insert under UPDATE, Delete under RETRACT. *)
let parse_updates ~default text =
  let parse_line line =
    let line = String.trim line in
    if line = "" then Ok []
    else begin
      let op, body =
        match line.[0] with
        | '+' -> (Datalog.Delta.Insert, String.sub line 1 (String.length line - 1))
        | '-' -> (Datalog.Delta.Delete, String.sub line 1 (String.length line - 1))
        | _ -> (default, line)
      in
      match Datalog.Parser.tuples body with
      | Error e -> Error (Format.asprintf "%a" Datalog.Parser.pp_error e)
      | Ok facts ->
        Ok
          (List.map
             (fun (pred, tuple) ->
               { Datalog.Delta.u_op = op; u_pred = pred; u_tuple = tuple })
             facts)
    end
  in
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | line :: rest -> (
      match parse_line line with
      | Error _ as e -> e
      | Ok ups -> go (ups :: acc) rest)
  in
  go [] (String.split_on_char '\n' text)

(* ---------------------------------------------------------------- *)
(* Replies                                                           *)
(* ---------------------------------------------------------------- *)

type head =
  | Ready of { proto : int }
  | Okay of { op : string; kv : (string * string) list }
  | Result_head of {
      id : string;
      partial : bool;
      reason : string option;  (** set iff [partial] *)
      rows : int;
      scheme : string;
      stats : string option;
    }
  | Row of string
  | End_of_result of { id : string }
  | Busy of { id : string option; reason : string; retry_after_ms : int }
  | Retry of { id : string; retry_after_ms : int }
  | Stats_reply of string
  | Pong
  | Bye of { reason : string }
  | Err of { code : string; msg : string }

let greeting = Printf.sprintf "DATALOGD/%d READY" version

let busy ?id ~reason ~retry_after_ms () =
  match id with
  | None -> Printf.sprintf "BUSY reason=%s retry-after-ms=%d" reason retry_after_ms
  | Some id ->
    Printf.sprintf "BUSY id=%s reason=%s retry-after-ms=%d" id reason
      retry_after_ms

let retry ~id ~retry_after_ms =
  Printf.sprintf "RETRY id=%s retry-after-ms=%d" id retry_after_ms

let result_head ?stats ~id ~rows ~scheme () =
  Printf.sprintf "RESULT id=%s status=ok rows=%d scheme=%s%s" id rows scheme
    (match stats with None -> "" | Some j -> " stats=" ^ j)

let partial_head ?stats ~id ~reason ~scheme () =
  Printf.sprintf "PARTIAL id=%s reason=%s rows=0 scheme=%s%s" id reason scheme
    (match stats with None -> "" | Some j -> " stats=" ^ j)

let end_of_result ~id = Printf.sprintf "END id=%s" id
let row r = "ROW " ^ r
let err ~code msg = Printf.sprintf "ERR %s %s" code msg
let bye ~reason = Printf.sprintf "BYE reason=%s" reason

let classify line =
  match tokens line with
  | [] -> Error "empty reply line"
  | verb :: rest -> (
    let kvs = kv_list rest in
    let req k =
      match find_kv kvs k with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "reply %s lacks %s=" verb k)
    in
    let req_int k = Result.bind (int_kv kvs k) (function
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "reply %s lacks %s=" verb k))
    in
    match verb with
    | _ when String.length verb >= 9 && String.sub verb 0 9 = "DATALOGD/" -> (
      match
        int_of_string_opt (String.sub verb 9 (String.length verb - 9))
      with
      | Some proto -> Ok (Ready { proto })
      | None -> Error ("bad greeting: " ^ line))
    | "OK" -> (
      match rest with
      | op :: kv_toks -> Ok (Okay { op; kv = kv_list kv_toks })
      | [] -> Error "bare OK reply")
    | "RESULT" ->
      let* id = req "id" in
      let* rows = req_int "rows" in
      let* scheme = req "scheme" in
      Ok
        (Result_head
           { id; partial = false; reason = None; rows; scheme;
             stats = find_kv kvs "stats" })
    | "PARTIAL" ->
      let* id = req "id" in
      let* reason = req "reason" in
      let* rows = req_int "rows" in
      let* scheme = req "scheme" in
      Ok
        (Result_head
           { id; partial = true; reason = Some reason; rows; scheme;
             stats = find_kv kvs "stats" })
    | "ROW" ->
      let body =
        if String.length line > 4 then String.sub line 4 (String.length line - 4)
        else ""
      in
      Ok (Row body)
    | "END" ->
      let* id = req "id" in
      Ok (End_of_result { id })
    | "BUSY" ->
      let* reason = req "reason" in
      let* retry_after_ms = req_int "retry-after-ms" in
      Ok (Busy { id = find_kv kvs "id"; reason; retry_after_ms })
    | "RETRY" ->
      let* id = req "id" in
      let* retry_after_ms = req_int "retry-after-ms" in
      Ok (Retry { id; retry_after_ms })
    | "STATS" ->
      let body =
        if String.length line > 6 then
          String.sub line 6 (String.length line - 6)
        else ""
      in
      Ok (Stats_reply body)
    | "PONG" -> Ok Pong
    | "BYE" ->
      let* reason = req "reason" in
      Ok (Bye { reason })
    | "ERR" -> (
      match rest with
      | code :: _ ->
        let prefix = String.length "ERR " + String.length code + 1 in
        let msg =
          if String.length line > prefix then
            String.sub line prefix (String.length line - prefix)
          else ""
        in
        Ok (Err { code; msg })
      | [] -> Error "bare ERR reply")
    | v -> Error (Printf.sprintf "unknown reply verb %s" v))
