(** The [datalogd] daemon engine.

    A persistent multi-tenant query server speaking {!Protocol} over a
    Unix-domain or loopback TCP socket. Programs and their extensional
    databases stay resident between requests; queries are scheduled
    onto the PR 2 runtimes under the PR 3 overload watchdog.

    {2 Robustness model}

    - {b Admission control.} At most [max_sessions] connections; at
      most [max_inflight] queries evaluating at once, with a bounded
      wait queue of [queue_depth] and a per-tenant cap of
      [tenant_inflight]. Overflow is answered immediately with [BUSY]
      and a retry hint — never a silent hang.
    - {b Budgets and deadlines.} Each query runs under
      {!Pardatalog.Run_config.t} limits: its own [deadline-ms] /
      [max-store] clamped to the server caps, or the server defaults.
    - {b Graceful degradation.} A budget breach is not an error: the
      watchdog's partial statistics come back as a [PARTIAL] reply
      tagged with {!Pardatalog.Overload.reason_kind}.
    - {b Idempotency.} Completed query {e and update} replies are
      cached per [(tenant, id)] and replayed byte-identically, so
      clients retry safely and an UPDATE is never applied twice; a
      duplicate of an in-flight id gets [RETRY].
    - {b Live maintenance.} Each dataset lazily opens one resident
      {!Pardatalog.Session.t} (server-default runtime, general
      scheme): [UPDATE]/[RETRACT] batches are folded in incrementally
      via {!Datalog.Stratified.Live}, and [QUERY live=true] reads the
      maintained model without re-evaluating. [LOAD] and [FACTS]
      invalidate the session; it rebuilds on the next use.
    - {b Drain.} {!request_stop} (wired to SIGTERM by [datalogd])
      stops accepting, lets in-flight queries finish, wakes idle
      sessions with [BYE reason=draining], and force-closes stragglers
      after [drain_grace] seconds. {!await} joins every session thread
      before returning — no leaked sessions.

    Loads swap a fresh {!Datalog.Database.copy} into the dataset
    registry, so a running query keeps its immutable snapshot. *)

type addr = Unix_sock of string | Tcp of int
(** [Tcp p] binds loopback only — the daemon has no authentication. *)

val pp_addr : Format.formatter -> addr -> unit

type config = {
  addr : addr;
  nprocs : int;  (** Default processor count per query. *)
  runtime : [ `Sim | `Domain ];  (** Default runtime. *)
  seed : int;  (** Hash seed for scheme constructors. *)
  max_sessions : int;  (** Concurrent connections cap. *)
  max_inflight : int;  (** Queries evaluating at once. *)
  queue_depth : int;  (** Admission wait-queue bound; 0 = reject when full. *)
  tenant_inflight : int;  (** Per-tenant in-flight cap. *)
  default_deadline_ms : int option;  (** Applied when the query sets none. *)
  deadline_cap_ms : int option;  (** Upper clamp on requested deadlines. *)
  max_store_cap : int option;  (** Upper clamp on requested store budgets. *)
  cache_size : int;  (** Idempotency cache entries; 0 disables replay. *)
  retry_after_ms : int;  (** Hint attached to BUSY / RETRY replies. *)
  drain_grace : float;  (** Seconds to wait for in-flight work on drain. *)
  hold_eval_ms : int;
      (** Artificial service time added to every evaluation — a test
          knob making saturation (BUSY) and duplicate-in-flight (RETRY)
          reproducible. 0 in production. *)
  fault : Pardatalog.Fault.plan;  (** Injected into every query's run. *)
}

val default_config : addr -> config

val validate_config : config -> (unit, string) result

type t

type drain_result = {
  drained_sessions : int;  (** Session threads joined over the lifetime. *)
  forced_sessions : int;  (** Sessions still open when the grace expired. *)
  replies_busy : int;
  queries_ok : int;
  queries_partial : int;
}

val start : ?metrics:Obs.Metrics.t -> config -> (t, string) result
(** Bind, listen, and spawn the accept thread. A stale Unix socket
    file left by a crashed daemon is reclaimed if nothing answers on
    it. *)

val request_stop : t -> unit
(** Signal-handler safe: a single pipe write. *)

val await : t -> drain_result
(** Block until {!request_stop}, then drain and join every session
    thread. Idempotent — a second call returns the same result. *)

val stop : t -> drain_result
(** {!request_stop} followed by {!await}. *)

val metrics : t -> Obs.Metrics.t
val active_sessions : t -> int

val load_program : t -> string -> string -> (int, string) result
(** [load_program t name text] parses and registers a program under
    [name] (used by [datalogd --load] preloading and by the LOAD
    verb). Returns the rule count. *)

val add_facts : t -> string -> string -> (int * int, string) result
(** [add_facts t name text] parses fact lines and swaps an extended
    EDB copy into dataset [name]. Returns [(added, total)] tuples. *)

val stats_json : t -> string
(** The STATS reply body: one-line JSON
    [{"schema":1,"kind":"datalogd-stats",...}]. *)
