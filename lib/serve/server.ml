open Datalog
open Pardatalog

let src = Logs.Src.create "datalogd.server" ~doc:"datalogd daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type addr = Unix_sock of string | Tcp of int

let pp_addr ppf = function
  | Unix_sock path -> Format.fprintf ppf "unix:%s" path
  | Tcp port -> Format.fprintf ppf "tcp:127.0.0.1:%d" port

type config = {
  addr : addr;
  nprocs : int;
  runtime : [ `Sim | `Domain ];
  seed : int;
  max_sessions : int;
  max_inflight : int;
  queue_depth : int;
  tenant_inflight : int;
  default_deadline_ms : int option;
  deadline_cap_ms : int option;
  max_store_cap : int option;
  cache_size : int;
  retry_after_ms : int;
  drain_grace : float;
  hold_eval_ms : int;
  fault : Fault.plan;
}

let default_config addr =
  {
    addr;
    nprocs = 4;
    runtime = `Domain;
    seed = 0;
    max_sessions = 64;
    max_inflight = 4;
    queue_depth = 8;
    tenant_inflight = 2;
    default_deadline_ms = None;
    deadline_cap_ms = Some 60_000;
    max_store_cap = None;
    cache_size = 256;
    retry_after_ms = 25;
    drain_grace = 5.0;
    hold_eval_ms = 0;
    fault = Fault.none;
  }

let validate_config c =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if c.nprocs < 1 then fail "nprocs must be >= 1, got %d" c.nprocs
  else if c.max_sessions < 1 then
    fail "max-sessions must be >= 1, got %d" c.max_sessions
  else if c.max_inflight < 1 then
    fail "max-inflight must be >= 1, got %d" c.max_inflight
  else if c.queue_depth < 0 then
    fail "queue-depth must be >= 0, got %d" c.queue_depth
  else if c.tenant_inflight < 1 then
    fail "tenant-inflight must be >= 1, got %d" c.tenant_inflight
  else if c.cache_size < 0 then
    fail "idempotency-cache must be >= 0, got %d" c.cache_size
  else if c.retry_after_ms < 1 then
    fail "retry-after-ms must be >= 1, got %d" c.retry_after_ms
  else if c.drain_grace < 0.0 then
    fail "drain-grace must be >= 0, got %g" c.drain_grace
  else if c.hold_eval_ms < 0 then
    fail "hold-eval-ms must be >= 0, got %d" c.hold_eval_ms
  else
    match
      List.find_opt
        (fun (_, v) ->
          match v with Some ms -> ms < 1 | None -> false)
        [
          ("default-deadline-ms", c.default_deadline_ms);
          ("deadline-cap-ms", c.deadline_cap_ms);
          ("max-store", c.max_store_cap);
        ]
    with
    | Some (name, Some v) -> fail "%s must be >= 1, got %d" name v
    | _ -> Ok ()

(* ---------------------------------------------------------------- *)
(* State                                                             *)
(* ---------------------------------------------------------------- *)

(* A resident dataset. [ds_edb] is swapped, never mutated in place:
   FACTS and UPDATE build a copy with the changes and replace the
   pointer, so a query that grabbed the previous value keeps reading an
   immutable snapshot while loads proceed.

   [ds_live] is the dataset's resident maintenance session (protocol
   v2): opened lazily by the first UPDATE/RETRACT or live QUERY, kept
   across requests so each batch pays only the incremental cost.
   Session handles are single-threaded, so every access happens under
   [ds_lock]; [ds_lock] is always taken outside the server lock, never
   inside it. *)
type live = {
  lv_session : Session.t;
  lv_derived : string list;  (* original derived predicate names *)
}

type dataset = {
  ds_program : Program.t;
  ds_rules : int;
  mutable ds_edb : Database.t;
  ds_lock : Mutex.t;
  mutable ds_live : live option;
}

type cache_entry = In_flight | Done of string list

type session = {
  s_id : int;
  s_fd : Unix.file_descr;
  mutable s_tenant : string;
  mutable s_busy : bool;
}

type drain_result = {
  drained_sessions : int;
  forced_sessions : int;
  replies_busy : int;
  queries_ok : int;
  queries_partial : int;
}

type t = {
  cfg : config;
  metrics : Obs.Metrics.t;
  lsock : Unix.file_descr;
  sock_path : string option;  (* unlink on close *)
  stop_rd : Unix.file_descr;
  stop_wr : Unix.file_descr;
  lock : Mutex.t;
  slot_free : Condition.t;
  mutable draining : bool;
  mutable inflight : int;
  mutable waiting : int;
  tenants : (string, int) Hashtbl.t;
  sessions : (int, session) Hashtbl.t;
  mutable session_threads : Thread.t list;
  mutable next_session : int;
  datasets : (string, dataset) Hashtbl.t;
  cache : (string, cache_entry) Hashtbl.t;
  cache_order : string Queue.t;
  mutable accept_thread : Thread.t option;
  mutable drained : drain_result option;
}

let metrics t = t.metrics

(* Counter / gauge names — also the contract of the STATS reply. *)
let c_accepted = "serve.accepted"
let c_rejected = "serve.rejected_busy"
let c_ok = "serve.queries_ok"
let c_partial = "serve.queries_partial"
let c_updates = "serve.updates_ok"
let c_replays = "serve.replays"
let c_retry_inflight = "serve.retry_inflight"
let c_errors = "serve.protocol_errors"
let c_drains = "serve.drains"
let g_sessions = "serve.active_sessions"
let g_inflight = "serve.inflight"
let g_queue = "serve.queue_depth"

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_gauges_locked t =
  Obs.Metrics.set_gauge t.metrics g_sessions (Hashtbl.length t.sessions);
  Obs.Metrics.set_gauge t.metrics g_inflight t.inflight;
  Obs.Metrics.set_gauge t.metrics g_queue t.waiting

(* ---------------------------------------------------------------- *)
(* Socket plumbing                                                   *)
(* ---------------------------------------------------------------- *)

let bind_listener addr =
  match addr with
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (try
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.listen fd 64;
       Ok (fd, None)
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Error
         (Printf.sprintf "cannot listen on 127.0.0.1:%d: %s" port
            (Unix.error_message e)))
  | Unix_sock path ->
    if String.length path >= 104 then
      Error (Printf.sprintf "socket path too long (%d bytes): %s"
               (String.length path) path)
    else begin
      (* A stale socket file from a crashed daemon would block restart;
         reclaim it only if nothing answers on it. *)
      (if Sys.file_exists path then
         let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         let live =
           try
             Unix.connect probe (Unix.ADDR_UNIX path);
             true
           with Unix.Unix_error _ -> false
         in
         Unix.close probe;
         if not live then (try Unix.unlink path with Unix.Unix_error _ -> ()));
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        Ok (fd, Some path)
      with Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error
          (Printf.sprintf "cannot listen on %s: %s" path
             (Unix.error_message e))
    end

let write_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let write_lines oc lines =
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc

(* ---------------------------------------------------------------- *)
(* The idempotency cache                                             *)
(* ---------------------------------------------------------------- *)

let cache_key ~tenant ~id = tenant ^ "\x00" ^ id

(* FIFO eviction over completed entries; in-flight markers are removed
   explicitly and never evicted. Called with the lock held. *)
let cache_store_locked t key lines =
  if t.cfg.cache_size > 0 then begin
    Hashtbl.replace t.cache key (Done lines);
    Queue.push key t.cache_order;
    while Queue.length t.cache_order > t.cfg.cache_size do
      let victim = Queue.pop t.cache_order in
      match Hashtbl.find_opt t.cache victim with
      | Some (Done _) -> Hashtbl.remove t.cache victim
      | _ -> ()
    done
  end

(* ---------------------------------------------------------------- *)
(* Query evaluation                                                  *)
(* ---------------------------------------------------------------- *)

let clamp_opt ~cap v =
  match (v, cap) with
  | None, c -> c
  | Some v, None -> Some v
  | Some v, Some c -> Some (min v c)

let string_of_reject r = Format.asprintf "%a" Plan.pp_reject r

let build_rewrite cfg (q : Protocol.query) ~nprocs program edb =
  match q.q_scheme with
  | `General -> (
    match Strategy.general ~seed:cfg.seed ~nprocs program with
    | Ok rw -> Ok ("general", rw)
    | Error e -> Error e)
  | `Auto -> (
    let profile = Check.Costmodel.profile_of_db edb in
    let outcome = Check.Planner.suggest ~profile ~nprocs ~seed:cfg.seed program in
    match outcome.Check.Planner.plan with
    | None -> Error "no scheme verifies for this program (scheme=auto)"
    | Some plan -> (
      match Plan.to_rewrite plan program with
      | Ok rw -> Ok (Plan.scheme_name plan.Plan.scheme, rw)
      | Error r -> Error (string_of_reject r)))

(* RESULT head, optional ROW lines, END — shared by the from-scratch
   and live query paths. *)
let result_lines (q : Protocol.query) ?stats ~scheme ~preds answers =
  let count =
    List.fold_left (fun acc p -> acc + Database.cardinal answers p) 0 preds
  in
  let rows =
    if not q.q_rows then []
    else
      List.concat_map
        (fun pred ->
          match Database.find answers pred with
          | None -> []
          | Some rel ->
            List.map
              (fun tuple ->
                Protocol.row (Format.asprintf "%s%a" pred Tuple.pp tuple))
              (Relation.sorted_elements rel))
        preds
  in
  (Protocol.result_head ?stats ~id:q.q_id ~rows:count ~scheme () :: rows)
  @ [ Protocol.end_of_result ~id:q.q_id ]

(* Build the reply lines of one query against an immutable dataset
   snapshot. Runs outside the server lock; everything it touches is
   either request-local or an immutable snapshot. *)
let evaluate cfg (q : Protocol.query) program edb =
  let nprocs =
    match q.q_nprocs with Some n -> min n 64 | None -> cfg.nprocs
  in
  let deadline_ms =
    clamp_opt ~cap:cfg.deadline_cap_ms
      (match q.q_deadline_ms with
       | Some d -> Some d
       | None -> cfg.default_deadline_ms)
  in
  let max_store = clamp_opt ~cap:cfg.max_store_cap q.q_max_store in
  match build_rewrite cfg q ~nprocs program edb with
  | Error msg -> [ Protocol.err ~code:"scheme" msg ]
  | Ok (scheme, rw) -> (
    let config =
      Run_config.(
        default
        |> with_deadline
             (Option.map (fun ms -> float_of_int ms /. 1000.) deadline_ms)
        |> with_max_store_rows max_store
        |> with_fault cfg.fault)
    in
    if cfg.hold_eval_ms > 0 then
      Unix.sleepf (float_of_int cfg.hold_eval_ms /. 1000.);
    let run () =
      match (q.q_runtime, cfg.runtime) with
      | `Sim, _ | `Default, `Sim -> Sim_runtime.run ~config rw ~edb
      | `Domain, _ | `Default, `Domain -> Domain_runtime.run ~config rw ~edb
    in
    match run () with
    | result ->
      let preds =
        match q.q_goal with
        | Some g -> [ g ]
        | None -> rw.Rewrite.derived
      in
      let answers = result.Sim_runtime.answers in
      let stats =
        if q.q_stats then
          Some (Stats.to_json ~scheme ~outcome:"ok" result.Sim_runtime.stats)
        else None
      in
      result_lines q ?stats ~scheme ~preds answers
    | exception Overload.Overload { reason; stats } ->
      let kind = Overload.reason_kind reason in
      let stats =
        if q.q_stats then Some (Stats.to_json ~scheme ~outcome:kind stats)
        else None
      in
      [
        Protocol.partial_head ?stats ~id:q.q_id ~reason:kind ~scheme ();
        Protocol.end_of_result ~id:q.q_id;
      ]
    | exception Sim_runtime.Round_budget_exceeded { stats; _ } ->
      let stats =
        if q.q_stats then
          Some (Stats.to_json ~scheme ~outcome:"round_budget" stats)
        else None
      in
      [
        Protocol.partial_head ?stats ~id:q.q_id ~reason:"round_budget" ~scheme
          ();
        Protocol.end_of_result ~id:q.q_id;
      ]
    | exception Plan.Rejected r ->
      [ Protocol.err ~code:"plan" (string_of_reject r) ])

(* ---------------------------------------------------------------- *)
(* Live sessions (UPDATE / RETRACT / QUERY live=true)                *)
(* ---------------------------------------------------------------- *)

let with_ds_lock ds f =
  Mutex.lock ds.ds_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock ds.ds_lock) f

(* Open (or reuse) the dataset's resident maintenance session. Called
   with [ds_lock] held. The session always runs the server's default
   runtime and processor count under the general scheme: a live model
   is a property of the dataset, not of any one request. *)
let live_session cfg ds =
  match ds.ds_live with
  | Some lv -> Ok lv
  | None -> (
    match Strategy.general ~seed:cfg.seed ~nprocs:cfg.nprocs ds.ds_program with
    | Error e -> Error e
    | Ok rw ->
      let config = Run_config.(default |> with_fault cfg.fault) in
      let session =
        match cfg.runtime with
        | `Sim -> Sim_runtime.open_session ~config rw ~edb:ds.ds_edb
        | `Domain -> Domain_runtime.open_session ~config rw ~edb:ds.ds_edb
      in
      let lv = { lv_session = session; lv_derived = rw.Rewrite.derived } in
      ds.ds_live <- Some lv;
      Ok lv)

(* A live query reads the session's maintained model instead of
   evaluating from scratch. [stats=true] is ignored here: per-run
   statistics belong to one-shot evaluations, and the session's
   cumulative counters surface only when it closes. Runs outside the
   server lock, under the dataset lock. *)
let evaluate_live cfg (q : Protocol.query) ds =
  with_ds_lock ds (fun () ->
      match live_session cfg ds with
      | Error msg -> [ Protocol.err ~code:"scheme" msg ]
      | Ok lv -> (
        match Session.model lv.lv_session with
        | answers ->
          let preds =
            match q.q_goal with Some g -> [ g ] | None -> lv.lv_derived
          in
          result_lines q ~scheme:"live" ~preds answers
        | exception Session.Closed _ ->
          ds.ds_live <- None;
          [ Protocol.err ~code:"session" "live session lost; retry" ]))

(* Fold one parsed update batch into the dataset: apply it to the
   resident session (incremental maintenance) and mirror the base
   change into the registry EDB by copy-and-swap, so from-scratch
   queries and STATS see the same facts. Sequential application of the
   raw updates equals the batch's net base effect (last operation per
   tuple wins). Runs outside the server lock, under the dataset
   lock. *)
let evaluate_update cfg ~op (u : Protocol.update) updates ds =
  with_ds_lock ds (fun () ->
      match live_session cfg ds with
      | Error msg -> [ Protocol.err ~code:"scheme" msg ]
      | Ok lv -> (
        match Session.apply lv.lv_session (Update_batch.of_list updates) with
        | outcome ->
          let db = Database.copy ds.ds_edb in
          List.iter
            (fun (up : Delta.update) ->
              match up.Delta.u_op with
              | Delta.Insert -> (
                try ignore (Database.add_fact db up.Delta.u_pred up.Delta.u_tuple)
                with Invalid_argument _ -> ())
              | Delta.Delete -> (
                match Database.find db up.Delta.u_pred with
                | None -> ()
                | Some rel ->
                  ignore
                    (Relation.remove_all rel (fun x ->
                         Tuple.compare x up.Delta.u_tuple = 0))))
            updates;
          ds.ds_edb <- db;
          [
            Printf.sprintf "OK %s prog=%s id=%s added=%d removed=%d" op
              u.Protocol.u_prog u.Protocol.u_id
              (List.length outcome.Session.oc_added)
              (List.length outcome.Session.oc_removed);
          ]
        | exception Session.Closed _ ->
          ds.ds_live <- None;
          [ Protocol.err ~code:"session" "live session lost; retry" ]
        | exception Overload.Overload { reason; _ } ->
          (* The session died mid-batch: drop it so the next request
             rebuilds from the (unpatched) registry EDB. *)
          ds.ds_live <- None;
          [ Protocol.err ~code:"overload" (Overload.reason_kind reason) ]
        | exception Invalid_argument msg ->
          (* Derived-predicate targets are rejected before any engine
             mutation, but stay conservative: rebuild on demand. *)
          ds.ds_live <- None;
          [ Protocol.err ~code:"update" msg ]))

(* ---------------------------------------------------------------- *)
(* Admission                                                         *)
(* ---------------------------------------------------------------- *)

type admission =
  | Admitted
  | Rejected of string  (* BUSY reason *)

(* Admission control for one query: a slot below [max_inflight], a
   bounded wait queue of [queue_depth], and a per-tenant in-flight cap.
   Blocking waiters are woken by query completion or by drain — never a
   silent hang. Called with the lock held; may release it while
   waiting. *)
let admit_locked t ~tenant =
  if t.draining then Rejected "draining"
  else if
    Option.value (Hashtbl.find_opt t.tenants tenant) ~default:0
    >= t.cfg.tenant_inflight
  then Rejected "tenant"
  else if t.inflight < t.cfg.max_inflight then begin
    t.inflight <- t.inflight + 1;
    Hashtbl.replace t.tenants tenant
      (Option.value (Hashtbl.find_opt t.tenants tenant) ~default:0 + 1);
    set_gauges_locked t;
    Admitted
  end
  else if t.waiting >= t.cfg.queue_depth then Rejected "queue"
  else begin
    t.waiting <- t.waiting + 1;
    set_gauges_locked t;
    while t.inflight >= t.cfg.max_inflight && not t.draining do
      Condition.wait t.slot_free t.lock
    done;
    t.waiting <- t.waiting - 1;
    if t.draining then begin
      set_gauges_locked t;
      Rejected "draining"
    end
    else begin
      t.inflight <- t.inflight + 1;
      Hashtbl.replace t.tenants tenant
        (Option.value (Hashtbl.find_opt t.tenants tenant) ~default:0 + 1);
      set_gauges_locked t;
      Admitted
    end
  end

let release_locked t ~tenant =
  t.inflight <- t.inflight - 1;
  (match Hashtbl.find_opt t.tenants tenant with
   | Some 1 | None -> Hashtbl.remove t.tenants tenant
   | Some n -> Hashtbl.replace t.tenants tenant (n - 1));
  set_gauges_locked t;
  Condition.signal t.slot_free

(* ---------------------------------------------------------------- *)
(* STATS                                                             *)
(* ---------------------------------------------------------------- *)

let stats_json t =
  locked t (fun () ->
      let buf = Buffer.create 512 in
      let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      add "{\"schema\":1,\"kind\":\"datalogd-stats\",\"proto\":%d,"
        Protocol.version;
      add "\"draining\":%b," t.draining;
      add
        "\"gauges\":{\"active_sessions\":%d,\"inflight\":%d,\"queue_depth\":%d},"
        (Hashtbl.length t.sessions) t.inflight t.waiting;
      let c name = Obs.Metrics.counter t.metrics name in
      add
        "\"counters\":{\"accepted\":%d,\"rejected_busy\":%d,\"queries_ok\":%d,\"queries_partial\":%d,\"updates_ok\":%d,\"replays\":%d,\"retry_inflight\":%d,\"protocol_errors\":%d},"
        (c c_accepted) (c c_rejected) (c c_ok) (c c_partial) (c c_updates)
        (c c_replays) (c c_retry_inflight) (c c_errors);
      add "\"programs\":{";
      let names =
        List.sort compare
          (Hashtbl.fold (fun k _ acc -> k :: acc) t.datasets [])
      in
      List.iteri
        (fun i name ->
          let ds = Hashtbl.find t.datasets name in
          if i > 0 then add ",";
          add "\"%s\":{\"rules\":%d,\"facts\":%d}" name ds.ds_rules
            (Database.total_tuples ds.ds_edb))
        names;
      add "}}";
      Buffer.contents buf)

(* ---------------------------------------------------------------- *)
(* Dataset loading (also used for --load/--facts preloading)          *)
(* ---------------------------------------------------------------- *)

let load_program t name text =
  match Parser.program text with
  | Error e -> Error (Format.asprintf "%a" Parser.pp_error e)
  | Ok program -> (
    match Program.check program with
    | Error msg -> Error msg
    | Ok () ->
      let rules = List.length (Program.rules program) in
      locked t (fun () ->
          (match Hashtbl.find_opt t.datasets name with
           | Some ds ->
             (* Replacing the rules invalidates the maintained model;
                the next update or live query rebuilds the session. *)
             Hashtbl.replace t.datasets name
               { ds with ds_program = program; ds_rules = rules;
                 ds_live = None }
           | None ->
             Hashtbl.replace t.datasets name
               {
                 ds_program = program;
                 ds_rules = rules;
                 ds_edb = Database.create ();
                 ds_lock = Mutex.create ();
                 ds_live = None;
               });
          Ok rules))

let add_facts t name text =
  match Parser.tuples text with
  | Error e -> Error (Format.asprintf "%a" Parser.pp_error e)
  | Ok facts -> (
    match locked t (fun () -> Hashtbl.find_opt t.datasets name) with
    | None -> Error (Printf.sprintf "no program named %s; LOAD it first" name)
    | Some ds ->
      (* Per-dataset EDB writers (FACTS and UPDATE/RETRACT) serialize
         on [ds_lock]; readers only ever follow the swapped pointer. *)
      with_ds_lock ds (fun () ->
          let db = Database.copy ds.ds_edb in
          let added =
            List.fold_left
              (fun acc (pred, tuple) ->
                match Database.add_fact db pred tuple with
                | true -> acc + 1
                | false -> acc
                | exception Invalid_argument msg -> ignore msg; acc)
              0 facts
          in
          ds.ds_edb <- db;
          (* A bulk load invalidates the maintained model; the next
             update or live query rebuilds the session from the new
             EDB. *)
          ds.ds_live <- None;
          Ok (added, Database.total_tuples db)))

(* ---------------------------------------------------------------- *)
(* Sessions                                                          *)
(* ---------------------------------------------------------------- *)

let read_payload ic =
  let buf = Buffer.create 256 in
  let rec go n =
    if n > Protocol.max_payload_lines then Error "payload too large"
    else
      match input_line ic with
      | "." -> Ok (Buffer.contents buf)
      | line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        go (n + 1)
      | exception End_of_file -> Error "connection closed mid-payload"
  in
  go 0

(* The admission verdict shared by QUERY, UPDATE and RETRACT: replay a
   completed id, RETRY a duplicate of an in-flight one, reject unknown
   programs, then admission-control and mark the id in flight. [found]
   maps the dataset to whatever the caller's evaluation needs. *)
let admission_verdict t session ~key ~prog ~found =
  let tenant = session.s_tenant in
  locked t (fun () ->
      match Hashtbl.find_opt t.cache key with
      | Some (Done lines) -> `Replay lines
      | Some In_flight -> `In_flight
      | None -> (
        match Hashtbl.find_opt t.datasets prog with
        | None -> `Unknown_prog
        | Some ds -> (
          match admit_locked t ~tenant with
          | Rejected reason -> `Busy reason
          | Admitted ->
            session.s_busy <- true;
            if t.cfg.cache_size > 0 then Hashtbl.replace t.cache key In_flight;
            `Run (found ds))))

(* Classify finished reply lines, settle the idempotency cache (ERR
   replies are never cached — the client may retry the id) and write
   them out. [ok_counter] is bumped for a successful head line. *)
let settle_and_reply t oc ~ok_counter key lines =
  (match lines with
   | first :: _ when String.length first >= 3 && String.sub first 0 3 = "ERR"
     ->
     Obs.Metrics.incr t.metrics c_errors;
     locked t (fun () -> Hashtbl.remove t.cache key)
   | first :: _
     when String.length first >= 7 && String.sub first 0 7 = "PARTIAL" ->
     Obs.Metrics.incr t.metrics c_partial;
     locked t (fun () -> cache_store_locked t key lines)
   | _ ->
     Obs.Metrics.incr t.metrics ok_counter;
     locked t (fun () -> cache_store_locked t key lines));
  write_lines oc lines

let handle_query t session oc (q : Protocol.query) =
  let tenant = session.s_tenant in
  let key = cache_key ~tenant ~id:q.q_id in
  let found ds =
    if q.q_live then `Live ds else `Scratch (ds.ds_program, ds.ds_edb)
  in
  match admission_verdict t session ~key ~prog:q.q_prog ~found with
  | `Replay lines ->
    Obs.Metrics.incr t.metrics c_replays;
    write_lines oc lines
  | `In_flight ->
    Obs.Metrics.incr t.metrics c_retry_inflight;
    write_line oc
      (Protocol.retry ~id:q.q_id ~retry_after_ms:t.cfg.retry_after_ms)
  | `Unknown_prog ->
    Obs.Metrics.incr t.metrics c_errors;
    write_line oc
      (Protocol.err ~code:"unknown-prog"
         (Printf.sprintf "no program named %s; LOAD it first" q.q_prog))
  | `Busy reason ->
    Obs.Metrics.incr t.metrics c_rejected;
    write_line oc
      (Protocol.busy ~id:q.q_id ~reason ~retry_after_ms:t.cfg.retry_after_ms
         ())
  | `Run target ->
    let lines =
      Fun.protect
        ~finally:(fun () ->
          locked t (fun () ->
              session.s_busy <- false;
              release_locked t ~tenant))
        (fun () ->
          match target with
          | `Scratch (program, edb) -> evaluate t.cfg q program edb
          | `Live ds -> evaluate_live t.cfg q ds)
    in
    settle_and_reply t oc ~ok_counter:c_ok key lines

let handle_update t session oc ~op ~default (u : Protocol.update) text =
  match Protocol.parse_updates ~default text with
  | Error msg ->
    Obs.Metrics.incr t.metrics c_errors;
    write_line oc (Protocol.err ~code:"parse" msg)
  | Ok updates -> (
    let tenant = session.s_tenant in
    let key = cache_key ~tenant ~id:u.Protocol.u_id in
    match
      admission_verdict t session ~key ~prog:u.Protocol.u_prog
        ~found:(fun ds -> ds)
    with
    | `Replay lines ->
      Obs.Metrics.incr t.metrics c_replays;
      write_lines oc lines
    | `In_flight ->
      Obs.Metrics.incr t.metrics c_retry_inflight;
      write_line oc
        (Protocol.retry ~id:u.Protocol.u_id
           ~retry_after_ms:t.cfg.retry_after_ms)
    | `Unknown_prog ->
      Obs.Metrics.incr t.metrics c_errors;
      write_line oc
        (Protocol.err ~code:"unknown-prog"
           (Printf.sprintf "no program named %s; LOAD it first"
              u.Protocol.u_prog))
    | `Busy reason ->
      Obs.Metrics.incr t.metrics c_rejected;
      write_line oc
        (Protocol.busy ~id:u.Protocol.u_id ~reason
           ~retry_after_ms:t.cfg.retry_after_ms ())
    | `Run ds ->
      let lines =
        Fun.protect
          ~finally:(fun () ->
            locked t (fun () ->
                session.s_busy <- false;
                release_locked t ~tenant))
          (fun () -> evaluate_update t.cfg ~op u updates ds)
      in
      settle_and_reply t oc ~ok_counter:c_updates key lines)

let session_loop t session =
  let ic = Unix.in_channel_of_descr session.s_fd in
  let oc = Unix.out_channel_of_descr session.s_fd in
  let bail = ref false in
  (try
     write_line oc Protocol.greeting;
     while not !bail do
       match input_line ic with
       | exception End_of_file -> bail := true
       | line ->
         (match Protocol.parse_request line with
          | Error msg ->
            Obs.Metrics.incr t.metrics c_errors;
            write_line oc (Protocol.err ~code:"proto" msg)
          | Ok (Hello tenant) ->
            (match tenant with
             | Some name -> session.s_tenant <- name
             | None -> ());
            write_line oc
              (Printf.sprintf "OK hello proto=%d tenant=%s" Protocol.version
                 session.s_tenant)
          | Ok Ping -> write_line oc "PONG"
          | Ok Quit ->
            write_line oc (Protocol.bye ~reason:"client");
            bail := true
          | Ok Stats -> write_line oc ("STATS " ^ stats_json t)
          | Ok (Load name) -> (
            match read_payload ic with
            | Error msg ->
              Obs.Metrics.incr t.metrics c_errors;
              write_line oc (Protocol.err ~code:"proto" msg);
              bail := true
            | Ok text -> (
              match load_program t name text with
              | Ok rules ->
                write_line oc
                  (Printf.sprintf "OK load prog=%s rules=%d" name rules)
              | Error msg ->
                Obs.Metrics.incr t.metrics c_errors;
                write_line oc (Protocol.err ~code:"parse" msg)))
          | Ok (Facts name) -> (
            match read_payload ic with
            | Error msg ->
              Obs.Metrics.incr t.metrics c_errors;
              write_line oc (Protocol.err ~code:"proto" msg);
              bail := true
            | Ok text -> (
              match add_facts t name text with
              | Ok (added, total) ->
                write_line oc
                  (Printf.sprintf "OK facts prog=%s tuples=%d total=%d" name
                     added total)
              | Error msg ->
                Obs.Metrics.incr t.metrics c_errors;
                write_line oc (Protocol.err ~code:"parse" msg)))
          | Ok (Update u) -> (
            match read_payload ic with
            | Error msg ->
              Obs.Metrics.incr t.metrics c_errors;
              write_line oc (Protocol.err ~code:"proto" msg);
              bail := true
            | Ok text ->
              handle_update t session oc ~op:"update" ~default:Delta.Insert u
                text)
          | Ok (Retract u) -> (
            match read_payload ic with
            | Error msg ->
              Obs.Metrics.incr t.metrics c_errors;
              write_line oc (Protocol.err ~code:"proto" msg);
              bail := true
            | Ok text ->
              handle_update t session oc ~op:"retract" ~default:Delta.Delete u
                text)
          | Ok (Query q) -> handle_query t session oc q);
         (* Drain notice: in-flight work above has finished; tell the
            client why the connection is going away, then leave. *)
         if (not !bail) && locked t (fun () -> t.draining) then begin
           write_line oc (Protocol.bye ~reason:"draining");
           bail := true
         end
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  (try Unix.shutdown session.s_fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  (try Unix.close session.s_fd with Unix.Unix_error _ -> ());
  locked t (fun () ->
      Hashtbl.remove t.sessions session.s_id;
      set_gauges_locked t)

(* ---------------------------------------------------------------- *)
(* Accept loop and lifecycle                                         *)
(* ---------------------------------------------------------------- *)

let accept_loop t =
  let continue = ref true in
  while !continue do
    match Unix.select [ t.lsock; t.stop_rd ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      if List.mem t.stop_rd readable then continue := false
      else if List.mem t.lsock readable then begin
        match Unix.accept t.lsock with
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
          let decision =
            locked t (fun () ->
                if t.draining then `Reject "draining"
                else if Hashtbl.length t.sessions >= t.cfg.max_sessions then
                  `Reject "sessions"
                else begin
                  let id = t.next_session in
                  t.next_session <- id + 1;
                  let session =
                    { s_id = id; s_fd = fd; s_tenant = "default";
                      s_busy = false }
                  in
                  Hashtbl.replace t.sessions id session;
                  set_gauges_locked t;
                  `Accept session
                end)
          in
          (match decision with
           | `Reject reason ->
             Obs.Metrics.incr t.metrics c_rejected;
             let oc = Unix.out_channel_of_descr fd in
             (try
                write_line oc
                  (Protocol.busy ~reason
                     ~retry_after_ms:t.cfg.retry_after_ms ())
              with Sys_error _ | Unix.Unix_error _ -> ());
             (try Unix.close fd with Unix.Unix_error _ -> ())
           | `Accept session ->
             Obs.Metrics.incr t.metrics c_accepted;
             let th = Thread.create (fun () -> session_loop t session) () in
             locked t (fun () ->
                 t.session_threads <- th :: t.session_threads))
      end
  done

let start ?metrics cfg =
  (* A peer that disappears mid-reply must surface as EPIPE in the
     session thread (caught there), not kill the process. *)
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
   | (_ : Sys.signal_behavior) -> ()
   | exception Sys_error _ -> ());
  match validate_config cfg with
  | Error e -> Error e
  | Ok () -> (
    match bind_listener cfg.addr with
    | Error e -> Error e
    | Ok (lsock, sock_path) ->
      let stop_rd, stop_wr = Unix.pipe () in
      let metrics =
        match metrics with Some m -> m | None -> Obs.Metrics.create ()
      in
      let t =
        {
          cfg;
          metrics;
          lsock;
          sock_path;
          stop_rd;
          stop_wr;
          lock = Mutex.create ();
          slot_free = Condition.create ();
          draining = false;
          inflight = 0;
          waiting = 0;
          tenants = Hashtbl.create 8;
          sessions = Hashtbl.create 32;
          session_threads = [];
          next_session = 0;
          datasets = Hashtbl.create 8;
          cache = Hashtbl.create 64;
          cache_order = Queue.create ();
          accept_thread = None;
          drained = None;
        }
      in
      t.accept_thread <- Some (Thread.create accept_loop t);
      Log.info (fun m -> m "listening on %a" pp_addr cfg.addr);
      Ok t)

let request_stop t =
  (* Async-signal-safe enough for a handler: one write on a pipe. *)
  try ignore (Unix.write t.stop_wr (Bytes.of_string "x") 0 1)
  with Unix.Unix_error _ -> ()

let await t =
  match t.drained with
  | Some r -> r
  | None ->
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (* Stop taking new work. *)
    let idle =
      locked t (fun () ->
          t.draining <- true;
          Condition.broadcast t.slot_free;
          Hashtbl.fold
            (fun _ s acc -> if s.s_busy then acc else s :: acc)
            t.sessions [])
    in
    (try Unix.close t.lsock with Unix.Unix_error _ -> ());
    (match t.sock_path with
     | Some path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
     | None -> ());
    (* Idle sessions are parked in a blocking read with no request in
       flight: shutting the socket down wakes them with EOF and they
       exit through their normal path. Busy ones finish their request
       first — that is the drain guarantee. *)
    List.iter
      (fun s ->
        try Unix.shutdown s.s_fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      idle;
    let deadline = Unix.gettimeofday () +. t.cfg.drain_grace in
    let rec wait_sessions () =
      let n = locked t (fun () -> Hashtbl.length t.sessions) in
      if n = 0 then 0
      else if Unix.gettimeofday () >= deadline then n
      else begin
        Thread.delay 0.005;
        wait_sessions ()
      end
    in
    let leftover = wait_sessions () in
    let forced =
      locked t (fun () ->
          Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [])
    in
    List.iter
      (fun s ->
        try Unix.shutdown s.s_fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      forced;
    let threads = locked t (fun () -> t.session_threads) in
    List.iter Thread.join threads;
    ignore leftover;
    (try Unix.close t.stop_rd with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_wr with Unix.Unix_error _ -> ());
    Obs.Metrics.incr t.metrics c_drains;
    let c name = Obs.Metrics.counter t.metrics name in
    let r =
      {
        drained_sessions = List.length threads;
        forced_sessions = List.length forced;
        replies_busy = c c_rejected;
        queries_ok = c c_ok;
        queries_partial = c c_partial;
      }
    in
    t.drained <- Some r;
    r

let stop t =
  request_stop t;
  await t

let active_sessions t = locked t (fun () -> Hashtbl.length t.sessions)
