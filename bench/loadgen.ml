(* Load generator for datalogd (the `serve` bench section).

   Each cell starts a fresh in-process daemon (lib/serve) on its own
   Unix socket, drives it with N client threads over real sockets, and
   tears it down with the SIGTERM drain path. The sweep covers the
   regimes the server is supposed to survive:

     baseline    ample capacity — every request completes OK;
     saturated   tiny admission window + artificial service time —
                 clients absorb BUSY with jittered exponential backoff;
     deadline    1 ms budgets on a heavy workload — graceful
                 degradation returns PARTIAL, never a hang;
     faulty      20% message drop injected into every evaluation —
                 the reliable-delivery layer still answers OK.

   Latencies are wall-clock per request (connect excluded), reported
   as p50/p95/p99 with qps and outcome counts, and written to
   BENCH_SERVE.json. The claims checked here are structural — every
   request terminates, rejections are immediate, drains leak nothing —
   plus a deliberately generous absolute p99 bound under saturation
   (boundedness, not speed, is the property). *)

open Serve

type outcome_kind = Ok_reply | Partial_reply | Busy_final | Errored

type sample = {
  latency_ms : float;
  kind : outcome_kind;
  busy_replies : int;
  retry_replies : int;
}

type cell = {
  name : string;
  clients : int;
  requests_per_client : int;
  config : Server.config -> Server.config;  (* tweak the default *)
  query : client:int -> req:int -> string;
  retry : bool;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let chain_facts n =
  let buf = Buffer.create (n * 12) in
  for i = 1 to n do
    Buffer.add_string buf (Printf.sprintf "par(%d,%d).\n" i (i + 1))
  done;
  Buffer.contents buf

let ancestor_text = "anc(X,Y) :- par(X,Y).\nanc(X,Y) :- anc(X,Z), par(Z,Y).\n"

(* One client thread: a session issuing its requests in order,
   recording a sample per request. Connection-level BUSY is counted as
   a final busy outcome with zero latency cost. *)
let client_thread ~addr ~cell ~index ~out =
  let samples = ref [] in
  let record s = samples := s :: !samples in
  (match Client.connect addr with
   | Client.Conn_error _ ->
     for _ = 1 to cell.requests_per_client do
       record
         { latency_ms = 0.0; kind = Errored; busy_replies = 0;
           retry_replies = 0 }
     done
   | Client.Conn_busy _ ->
     for _ = 1 to cell.requests_per_client do
       record
         { latency_ms = 0.0; kind = Busy_final; busy_replies = 1;
           retry_replies = 0 }
     done
   | Client.Conn c ->
     (* Each client is its own tenant, so the per-tenant cap measures
        isolation rather than throttling the whole sweep. *)
     (match Client.request c (Printf.sprintf "HELLO tenant=c%d" index) with
      | Ok _ | Error _ -> ());
     let jitter =
       (* Seeded per client so the backoff trajectories decorrelate
          while the whole sweep stays reproducible. *)
       let state = ref (1 + (index * 2654435761)) in
       fun _ ->
         state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
         !state mod 7
     in
     for req = 1 to cell.requests_per_client do
       let line = cell.query ~client:index ~req in
       let t0 = Unix.gettimeofday () in
       let reply =
         if cell.retry then
           Result.map
             (fun (o : Client.attempt_outcome) ->
               (o.Client.reply, o.Client.busy_replies, o.Client.retry_replies))
             (Client.request_retry ~max_attempts:8 ~base_ms:2 ~cap_ms:50
                ~jitter c line)
         else Result.map (fun r -> (r, 0, 0)) (Client.request c line)
       in
       let latency_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
       match reply with
       | Error _ ->
         record
           { latency_ms; kind = Errored; busy_replies = 0; retry_replies = 0 }
       | Ok (r, busy_replies, retry_replies) ->
         let kind =
           match r.Client.head with
           | Protocol.Result_head { partial = false; _ } -> Ok_reply
           | Protocol.Result_head { partial = true; _ } -> Partial_reply
           | Protocol.Busy _ | Protocol.Retry _ -> Busy_final
           | _ -> Errored
         in
         let busy_replies =
           busy_replies
           + (match r.Client.head with Protocol.Busy _ -> 1 | _ -> 0)
         in
         record { latency_ms; kind; busy_replies; retry_replies }
     done;
     Client.close c);
  out.(index) <- !samples

type cell_result = {
  r_name : string;
  r_clients : int;
  r_requests : int;
  r_ok : int;
  r_partial : int;
  r_busy : int;
  r_errors : int;
  r_busy_replies : int;
  r_retry_replies : int;
  r_qps : float;
  r_p50 : float;
  r_p95 : float;
  r_p99 : float;
  r_forced : int;
  r_leaked : int;
}

let run_cell ~dir cell =
  let addr = Server.Unix_sock (Filename.concat dir (cell.name ^ ".sock")) in
  let config = cell.config (Server.default_config addr) in
  match Server.start config with
  | Error e -> Error (cell.name ^ ": " ^ e)
  | Ok srv ->
    (match Server.load_program srv "anc" ancestor_text with
     | Error e -> failwith e
     | Ok _ -> ());
    (match Server.add_facts srv "anc" (chain_facts 120) with
     | Error e -> failwith e
     | Ok _ -> ());
    let out = Array.make cell.clients [] in
    let t0 = Unix.gettimeofday () in
    let threads =
      List.init cell.clients (fun index ->
          Thread.create
            (fun () -> client_thread ~addr ~cell ~index ~out)
            ())
    in
    List.iter Thread.join threads;
    let wall_s = Unix.gettimeofday () -. t0 in
    let drain = Server.stop srv in
    (* [stop] joins every session thread, so anything still registered
       here is a genuine leak. *)
    let leaked = Server.active_sessions srv in
    let samples = List.concat (Array.to_list out) in
    let count k = List.length (List.filter (fun s -> s.kind = k) samples) in
    let sum f = List.fold_left (fun acc s -> acc + f s) 0 samples in
    let lat =
      List.filter_map
        (fun s ->
          match s.kind with
          | Ok_reply | Partial_reply | Busy_final -> Some s.latency_ms
          | Errored -> None)
        samples
      |> Array.of_list
    in
    Array.sort compare lat;
    let completed = Array.length lat in
    Ok
      {
        r_name = cell.name;
        r_clients = cell.clients;
        r_requests = List.length samples;
        r_ok = count Ok_reply;
        r_partial = count Partial_reply;
        r_busy = count Busy_final;
        r_errors = count Errored;
        r_busy_replies = sum (fun s -> s.busy_replies);
        r_retry_replies = sum (fun s -> s.retry_replies);
        r_qps = float_of_int completed /. wall_s;
        r_p50 = percentile lat 0.50;
        r_p95 = percentile lat 0.95;
        r_p99 = percentile lat 0.99;
        r_forced = drain.Server.forced_sessions;
        r_leaked = leaked;
      }

let cells =
  [
    {
      name = "baseline";
      clients = 4;
      requests_per_client = 15;
      config = (fun c -> { c with Server.nprocs = 2; runtime = `Sim });
      query =
        (fun ~client ~req ->
          Printf.sprintf "QUERY id=b%d-%d prog=anc runtime=sim nprocs=2"
            client req);
      retry = false;
    };
    {
      name = "saturated";
      clients = 12;
      requests_per_client = 6;
      config =
        (fun c ->
          { c with Server.nprocs = 2; runtime = `Sim; max_inflight = 2;
            queue_depth = 2; tenant_inflight = 4; hold_eval_ms = 5;
            retry_after_ms = 5 });
      query =
        (fun ~client ~req ->
          Printf.sprintf "QUERY id=s%d-%d prog=anc runtime=sim nprocs=2"
            client req);
      retry = true;
    };
    {
      name = "deadline";
      clients = 6;
      requests_per_client = 5;
      config = (fun c -> { c with Server.nprocs = 2; runtime = `Sim });
      query =
        (fun ~client ~req ->
          Printf.sprintf
            "QUERY id=d%d-%d prog=anc runtime=sim nprocs=2 deadline-ms=1"
            client req);
      retry = false;
    };
    {
      name = "faulty";
      clients = 4;
      requests_per_client = 5;
      config =
        (fun c ->
          { c with Server.nprocs = 2; runtime = `Sim;
            fault = Pardatalog.Fault.make ~seed:7 ~drop:0.2 () });
      query =
        (fun ~client ~req ->
          Printf.sprintf "QUERY id=f%d-%d prog=anc runtime=sim nprocs=2"
            client req);
      retry = false;
    };
  ]

let write_json results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":1,\"bench\":\"SERVE\",\"cells\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%S,\"clients\":%d,\"requests\":%d,\"ok\":%d,\"partial\":%d,\"busy_final\":%d,\"errors\":%d,\"busy_replies\":%d,\"retry_replies\":%d,\"qps\":%.1f,\"p50_ms\":%.2f,\"p95_ms\":%.2f,\"p99_ms\":%.2f,\"forced_sessions\":%d,\"leaked_sessions\":%d}"
           r.r_name r.r_clients r.r_requests r.r_ok r.r_partial r.r_busy
           r.r_errors r.r_busy_replies r.r_retry_replies r.r_qps r.r_p50
           r.r_p95 r.r_p99 r.r_forced r.r_leaked))
    results;
  Buffer.add_string buf "]}\n";
  let oc = open_out "BENCH_SERVE.json" in
  output_string oc (Buffer.contents buf);
  close_out oc

(* The idempotency spot-check: the same (tenant, id) twice, replies
   byte-identical, second one served from the cache. *)
let replay_check ~dir =
  let addr = Server.Unix_sock (Filename.concat dir "replay.sock") in
  match Server.start (Server.default_config addr) with
  | Error _ -> false
  | Ok srv ->
    (match Server.load_program srv "anc" ancestor_text with
     | Error e -> failwith e
     | Ok _ -> ());
    (match Server.add_facts srv "anc" (chain_facts 20) with
     | Error e -> failwith e
     | Ok _ -> ());
    let ok =
      match Client.connect addr with
      | Client.Conn c ->
        let q = "QUERY id=replay prog=anc rows=true stats=true" in
        let a = Client.request c q and b = Client.request c q in
        Client.close c;
        (match (a, b) with
         | Ok a, Ok b -> a.Client.raw = b.Client.raw
         | _ -> false)
      | _ -> false
    in
    let _ = Server.stop srv in
    ok

let reqs_per = List.map (fun c -> (c.name, c.requests_per_client)) cells

let run ~claim () =
  let dir =
    let d = Filename.temp_file "datalogd" "" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let results =
        List.filter_map
          (fun cell ->
            match run_cell ~dir cell with
            | Ok r ->
              Format.printf
                "  %-10s %2d clients %3d reqs: ok=%d partial=%d busy=%d \
                 err=%d  qps=%.0f p50=%.1fms p99=%.1fms (busy replies %d, \
                 retries %d)@."
                r.r_name r.r_clients r.r_requests r.r_ok r.r_partial r.r_busy
                r.r_errors r.r_qps r.r_p50 r.r_p99 r.r_busy_replies
                r.r_retry_replies;
              Some r
            | Error e ->
              Format.printf "  %s@." e;
              None)
          cells
      in
      let find name = List.find_opt (fun r -> r.r_name = name) results in
      claim "every cell ran" (List.length results = List.length cells);
      claim "every request terminates (none lost, none hung)"
        (List.for_all
           (fun r -> r.r_requests = r.r_clients * List.assoc r.r_name reqs_per)
           results);
      claim "baseline and faulty cells answer every request OK"
        (match (find "baseline", find "faulty") with
         | Some b, Some f ->
           b.r_ok = b.r_requests && f.r_ok = f.r_requests
         | _ -> false);
      claim "saturation produces BUSY backpressure, absorbed by backoff"
        (match find "saturated" with
         | Some s -> s.r_busy_replies > 0 && s.r_errors = 0
         | None -> false);
      claim "p99 under saturation is bounded (< 2000 ms)"
        (match find "saturated" with
         | Some s -> s.r_p99 < 2000.0
         | None -> false);
      claim "1 ms deadlines degrade gracefully to PARTIAL"
        (match find "deadline" with
         | Some d -> d.r_partial > 0 && d.r_errors = 0
         | None -> false);
      claim "drain leaks no session in any cell"
        (List.for_all (fun r -> r.r_leaked = 0 && r.r_forced = 0) results);
      claim "idempotent replay is byte-identical" (replay_check ~dir);
      write_json results;
      Format.printf "  wrote BENCH_SERVE.json@.")
