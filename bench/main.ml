(* Experiment harness.

   The paper (Ganguly, Silberschatz, Tsur, SIGMOD 1990) is qualitative:
   its reproducible artifacts are four figures, the worked examples of
   Sections 4 and 7, and theorem-shaped claims. Every one of them is
   regenerated here, together with the quantitative studies the paper
   defers ("load balancing, processor utilization etc.") and ablations
   of the design choices called out in DESIGN.md.

   Usage:  dune exec bench/main.exe            (all sections)
           dune exec bench/main.exe f3 s6 p2   (selected sections)
           dune exec bench/main.exe -- --check-regression BENCH_PR5.json
                                               (perf-regression gate)

   Sections: f1 f2 f3 f4  e1 e2 e3  t2 s6 e8 d8  p1 p2 p3
              a1 a2 a3 a4 a5  r1 r2  timing obs perf perf2 plan incr
              serve net

   Flags: --help                    list sections and flags, then exit
          --check-regression FILE   re-measure the perf workloads and
                                    exit nonzero if any slowed beyond
                                    the baseline's threshold
          --slowdown F              multiply measured times by F
                                    (tests the gate by injection)
          --out FILE                where `perf` writes its baseline
                                    (default BENCH_PR5.json; `perf2`
                                    always writes BENCH_PR10.json) *)

open Datalog
open Pardatalog

let failures = ref 0

let claim name ok =
  if not ok then incr failures;
  Format.printf "  [%s] %s@." (if ok then "PASS" else "FAIL") name

(* Flags are stripped from argv before section selection; what remains
   is the list of requested section ids (all sections when empty). *)
let picks, regression_baseline, slowdown, out_file, want_help =
  let picks = ref [] and reg = ref None in
  let slow = ref 1.0 and out = ref "BENCH_PR5.json" in
  let help = ref false in
  let rec go = function
    | [] -> ()
    | ("--help" | "-h") :: rest ->
      help := true;
      go rest
    | "--check-regression" :: file :: rest ->
      reg := Some file;
      go rest
    | "--slowdown" :: f :: rest ->
      slow := float_of_string f;
      go rest
    | "--out" :: file :: rest ->
      out := file;
      go rest
    | id :: rest ->
      picks := id :: !picks;
      go rest
  in
  (match Array.to_list Sys.argv with _ :: rest -> go rest | [] -> ());
  (List.rev !picks, !reg, !slow, !out, !help)

let section id title f =
  let wanted =
    match picks with [] -> true | picks -> List.mem id picks
  in
  if wanted then begin
    Format.printf "@.=== %s: %s ===@." (String.uppercase_ascii id) title;
    f ()
  end

(* ------------------------------------------------------------------ *)
(* Shared workloads (fixed seeds: every run reproduces these numbers). *)
(* ------------------------------------------------------------------ *)

let workloads =
  lazy
    (let rng = Workload.Rng.create ~seed:2026 in
     [
       ("chain-200", Workload.Graphgen.chain 200);
       ("tree-d9", Workload.Graphgen.binary_tree ~depth:9);
       ("random-120x240",
        Workload.Graphgen.random_digraph rng ~nodes:120 ~edges:240);
       ("cycle-60", Workload.Graphgen.cycle 60);
     ])

let edb_of edges = Workload.Edb.of_edges edges
let ancestor = Workload.Progs.ancestor

(* ------------------------------------------------------------------ *)
(* F1-F4: the figures.                                                 *)
(* ------------------------------------------------------------------ *)

let sirup_of p = Result.get_ok (Analysis.as_sirup p)

let f1 () =
  let g = Dataflow.of_sirup (sirup_of Workload.Progs.example7) in
  Format.printf "  dataflow graph: @[%a@]@." Dataflow.pp g;
  claim "Figure 1 is the chain 1 -> 2 -> 3"
    (g.Dataflow.edges = [ (1, 2); (2, 3) ])

let f2 () =
  let s = sirup_of ancestor in
  let g = Dataflow.of_sirup s in
  Format.printf "  dataflow graph: @[%a@]@." Dataflow.pp g;
  claim "Figure 2 is the self-loop on position 2"
    (g.Dataflow.edges = [ (2, 2) ]);
  match Dataflow.communication_free_choice s with
  | Some fc ->
    claim "Theorem 3 recovers Example 1's choice v(r) = <Y>"
      (fc.Dataflow.vr = [ "Y" ] && fc.Dataflow.ve = [ "Y" ])
  | None -> claim "Theorem 3 recovers Example 1's choice v(r) = <Y>" false

let figure3 =
  lazy
    (Netgraph.of_labels (Pid.bitvec 2)
       [
         ("(00)", "(00)"); ("(00)", "(10)");
         ("(01)", "(00)"); ("(01)", "(01)"); ("(01)", "(10)");
         ("(10)", "(01)"); ("(10)", "(10)"); ("(10)", "(11)");
         ("(11)", "(01)"); ("(11)", "(11)");
       ])

let f3 () =
  match
    Derive.minimal_network
      { sirup = sirup_of Workload.Progs.example6; ve = [ "X"; "Y" ];
        vr = [ "Y"; "Z" ]; spec = Hash_fn.Bitvec }
  with
  | Error e -> claim ("Figure 3 derivation: " ^ e) false
  | Ok net ->
    Format.printf "  derived network: @[%a@]@." Netgraph.pp net;
    claim "Figure 3: 10 edges; (00) can reach only itself and (10)"
      (Netgraph.equal net (Lazy.force figure3));
    (* Run on random data for several bit functions g and confirm the
       execution stays inside the derived network. *)
    let ok = ref true in
    List.iter
      (fun seed ->
        let h = Hash_fn.bitvec ~seed ~arity:2 () in
        let rw =
          Rewrite.make Workload.Progs.example6
            ~policies:
              [
                Rewrite.Uniform (Discriminant.make ~vars:[ "X"; "Y" ] ~fn:h);
                Rewrite.Uniform (Discriminant.make ~vars:[ "Y"; "Z" ] ~fn:h);
              ]
        in
        let rng = Workload.Rng.create ~seed:(seed + 100) in
        let edb = Database.create () in
        List.iter
          (fun (a, b) ->
            ignore (Database.add_fact edb "q" (Tuple.of_ints [ a; b ]));
            ignore (Database.add_fact edb "r" (Tuple.of_ints [ b; a ])))
          (Workload.Graphgen.random_digraph rng ~nodes:25 ~edges:50);
        let r = Sim_runtime.run rw ~edb in
        ok :=
          !ok && Verify.channels_within r.Sim_runtime.stats (Lazy.force figure3))
      [ 0; 1; 2; 3; 4 ];
    claim "every execution (5 bit functions, random data) stays inside it"
      !ok

let figure4 =
  lazy
    (Netgraph.of_labels
       (Pid.range ~lo:(-1) ~hi:2)
       [
         ("-1", "-1"); ("-1", "1"); ("-1", "2");
         ("0", "0"); ("0", "1"); ("0", "2");
         ("1", "-1"); ("1", "0"); ("1", "1");
         ("2", "-1"); ("2", "0"); ("2", "2");
       ])

let f4 () =
  match
    Derive.minimal_network
      { sirup = sirup_of Workload.Progs.example7; ve = [ "U"; "V"; "W" ];
        vr = [ "V"; "W"; "Z" ];
        spec = Hash_fn.Linear { coeffs = [| 1; -1; 1 |]; lo = -1 } }
  with
  | Error e -> claim ("Figure 4 derivation: " ^ e) false
  | Ok net ->
    Format.printf "  derived network: @[%a@]@." Netgraph.pp net;
    claim "Figure 4 matches the solutions of equations (4)-(5)"
      (Netgraph.equal net (Lazy.force figure4))

(* ------------------------------------------------------------------ *)
(* E1-E3: the Section 4 examples, quantitatively.                      *)
(* ------------------------------------------------------------------ *)

let header () =
  Format.printf "  %-16s %2s %6s %9s %9s %9s %8s %8s@." "workload" "N"
    "equal" "messages" "firings" "seqfire" "baseres" "rounds"

let row name n (report : Verify.report) =
  Format.printf "  %-16s %2d %6b %9d %9d %9d %8d %8d@." name n
    report.Verify.equal_answers report.Verify.messages
    report.Verify.parallel_firings report.Verify.sequential_firings
    (Stats.total_base_resident report.Verify.stats)
    report.Verify.stats.Stats.rounds

let for_workloads f =
  List.iter
    (fun (name, edges) ->
      let edb = edb_of edges in
      List.iter (fun n -> f name edb n) [ 2; 4; 8 ])
    (Lazy.force workloads)

let e1 () =
  header ();
  let all_silent = ref true and all_exact = ref true in
  for_workloads (fun name edb n ->
      let rw =
        Result.get_ok (Strategy.hash_q ~nprocs:n ~ve:[ "Y" ] ~vr:[ "Y" ] ancestor)
      in
      let report = Verify.check rw ~edb in
      row name n report;
      all_silent := !all_silent && report.Verify.messages = 0;
      all_exact :=
        !all_exact && report.Verify.equal_answers
        && report.Verify.non_redundant);
  claim "no inter-processor message on any workload or N" !all_silent;
  claim "always exact and non-redundant (Theorems 1-2)" !all_exact;
  claim "base relation is fully replicated (N copies)"
    (let edb = edb_of (List.assoc "chain-200" (Lazy.force workloads)) in
     let rw =
       Result.get_ok (Strategy.hash_q ~nprocs:4 ~ve:[ "Y" ] ~vr:[ "Y" ] ancestor)
     in
     let r = Sim_runtime.run rw ~edb in
     Stats.total_base_resident r.Sim_runtime.stats
     = 4 * Database.cardinal edb "par")

let e2_messages : (string * int, int) Hashtbl.t = Hashtbl.create 16

let e2 () =
  header ();
  let all_exact = ref true in
  for_workloads (fun name edb n ->
      let rng = Workload.Rng.create ~seed:5 in
      let partition = Workload.Edb.partition_random rng ~nprocs:n edb ~pred:"par" in
      let rw = Result.get_ok (Strategy.example2 ~nprocs:n ~partition ancestor) in
      let report = Verify.check rw ~edb in
      row name n report;
      Hashtbl.replace e2_messages (name, n) report.Verify.messages;
      all_exact :=
        !all_exact && report.Verify.equal_answers
        && report.Verify.non_redundant);
  claim "arbitrary fragments stay exact and non-redundant" !all_exact;
  claim "base relation is fully partitioned (1 copy total)"
    (let edb = edb_of (List.assoc "chain-200" (Lazy.force workloads)) in
     let rng = Workload.Rng.create ~seed:5 in
     let partition = Workload.Edb.partition_random rng ~nprocs:4 edb ~pred:"par" in
     let rw = Result.get_ok (Strategy.example2 ~nprocs:4 ~partition ancestor) in
     let r = Sim_runtime.run rw ~edb in
     Stats.total_base_resident r.Sim_runtime.stats
     = Database.cardinal edb "par")

let e3 () =
  header ();
  let all_exact = ref true and always_cheaper = ref true in
  let compared = ref false in
  for_workloads (fun name edb n ->
      let rw = Result.get_ok (Strategy.example3 ~nprocs:n ancestor) in
      let report = Verify.check rw ~edb in
      row name n report;
      (match Hashtbl.find_opt e2_messages (name, n) with
       | Some e2m ->
         compared := true;
         always_cheaper := !always_cheaper && report.Verify.messages <= e2m
       | None -> ());
      all_exact :=
        !all_exact && report.Verify.equal_answers
        && report.Verify.non_redundant);
  claim "always exact and non-redundant" !all_exact;
  if !compared then
    claim "never more traffic than Example 2 on the same workload"
      !always_cheaper

(* ------------------------------------------------------------------ *)
(* T2: Theorems 2 and 6 across schemes and programs.                   *)
(* ------------------------------------------------------------------ *)

let t2 () =
  Format.printf "  %-34s %9s %9s %6s@." "configuration" "parallel"
    "sequential" "ok";
  let all_ok = ref true in
  let run name program edb rw_result =
    match rw_result with
    | Error e -> Format.printf "  %-34s skipped: %s@." name e
    | Ok rw ->
      let _, seq = Seminaive.evaluate program edb in
      let r = Sim_runtime.run rw ~edb in
      let par = Stats.total_firings r.Sim_runtime.stats in
      let ok = par <= seq.Seminaive.firings in
      all_ok := !all_ok && ok;
      Format.printf "  %-34s %9d %9d %6b@." name par seq.Seminaive.firings ok
  in
  let tree = edb_of (Workload.Graphgen.binary_tree ~depth:7) in
  let rng = Workload.Rng.create ~seed:77 in
  let rand = edb_of (Workload.Graphgen.random_digraph rng ~nodes:80 ~edges:160) in
  let sg = Workload.Edb.same_generation rng ~people:40 ~parents_per:2 in
  List.iter
    (fun n ->
      run
        (Printf.sprintf "ancestor/q(Y;Y)/N=%d" n)
        ancestor tree
        (Strategy.hash_q ~nprocs:n ~ve:[ "Y" ] ~vr:[ "Y" ] ancestor);
      run
        (Printf.sprintf "ancestor/q(X;Z)/N=%d" n)
        ancestor rand
        (Strategy.hash_q ~nprocs:n ~ve:[ "X" ] ~vr:[ "Z" ] ancestor);
      run
        (Printf.sprintf "nonlinear-ancestor/T/N=%d" n)
        Workload.Progs.ancestor_nonlinear tree
        (Strategy.general ~nprocs:n Workload.Progs.ancestor_nonlinear);
      run
        (Printf.sprintf "same-generation/T/N=%d" n)
        Workload.Progs.same_generation sg
        (Strategy.general ~nprocs:n Workload.Progs.same_generation))
    [ 2; 4; 8 ];
  claim "every guarded scheme fires at most the sequential count" !all_ok

(* ------------------------------------------------------------------ *)
(* S6: the Section 6 redundancy/communication spectrum.                *)
(* ------------------------------------------------------------------ *)

let s6 () =
  let rng = Workload.Rng.create ~seed:13 in
  let edges = Workload.Graphgen.random_digraph rng ~nodes:80 ~edges:160 in
  let edb = edb_of edges in
  let _, seq = Seminaive.evaluate ancestor edb in
  Format.printf "  random-80x160, N=4, sequential firings = %d@."
    seq.Seminaive.firings;
  Format.printf "  %-7s %6s %10s %12s %8s@." "alpha" "equal" "messages"
    "redundancy" "rounds";
  let results =
    List.map
      (fun alpha ->
        let rw = Result.get_ok (Strategy.tradeoff ~nprocs:4 ~alpha ancestor) in
        let report = Verify.check rw ~edb in
        Format.printf "  %-7.2f %6b %10d %+12.3f %8d@." alpha
          report.Verify.equal_answers report.Verify.messages
          report.Verify.redundancy report.Verify.stats.Stats.rounds;
        (alpha, report))
      [ 0.0; 0.125; 0.25; 0.375; 0.5; 0.625; 0.75; 0.875; 1.0 ]
  in
  let get a = List.assoc a results in
  claim "alpha = 0 endpoint is non-redundant (Section 3 scheme)"
    (get 0.0).Verify.non_redundant;
  claim "alpha = 1 endpoint sends nothing (Wolfson's scheme)"
    ((get 1.0).Verify.messages = 0);
  claim "messages decrease monotonically with alpha"
    (let msgs = List.map (fun (_, r) -> r.Verify.messages) results in
     let rec decreasing = function
       | a :: (b :: _ as rest) -> a >= b && decreasing rest
       | _ -> true
     in
     decreasing msgs);
  claim "every point of the spectrum is exact (Theorem 4)"
    (List.for_all (fun (_, r) -> r.Verify.equal_answers) results)

(* ------------------------------------------------------------------ *)
(* E8: the Section 7 scheme on Example 8.                              *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let rw =
    Result.get_ok (Strategy.general ~nprocs:4 Workload.Progs.ancestor_nonlinear)
  in
  Format.printf
    "  processor 0 program (the paper's Example 8 instantiated):@.";
  Format.printf "  %a@." Program.pp rw.Rewrite.programs.(0);
  header ();
  let ok = ref true in
  List.iter
    (fun (name, edges) ->
      let edb = edb_of edges in
      let report = Verify.check rw ~edb in
      row name 4 report;
      ok := !ok && report.Verify.equal_answers && report.Verify.non_redundant)
    (Lazy.force workloads);
  claim "nonlinear ancestor: exact and non-redundant everywhere" !ok

(* ------------------------------------------------------------------ *)
(* P1: load balance and utilization (deferred by the paper).           *)
(* ------------------------------------------------------------------ *)

let p1 () =
  let rng = Workload.Rng.create ~seed:31 in
  let edges = Workload.Graphgen.random_digraph rng ~nodes:150 ~edges:300 in
  let edb = edb_of edges in
  Format.printf "  random-150x300, example 3 scheme@.";
  Format.printf "  %2s %9s %9s %9s %11s %12s@." "N" "minfire" "maxfire"
    "imbalance" "utilization" "msgs/firing";
  let balanced = ref true in
  List.iter
    (fun n ->
      let rw = Result.get_ok (Strategy.example3 ~nprocs:n ancestor) in
      let r = Sim_runtime.run rw ~edb in
      let s = r.Sim_runtime.stats in
      let fires = Array.map (fun p -> p.Stats.firings) s.Stats.per_proc in
      let minf = Array.fold_left min max_int fires in
      let maxf = Array.fold_left max 0 fires in
      let util =
        Array.fold_left
          (fun acc p ->
            acc
            +. (float_of_int p.Stats.active_rounds
                /. float_of_int (max 1 s.Stats.rounds)))
          0.0 s.Stats.per_proc
        /. float_of_int n
      in
      let mpf =
        float_of_int (Stats.total_messages s)
        /. float_of_int (max 1 (Stats.total_firings s))
      in
      Format.printf "  %2d %9d %9d %9.3f %11.2f %12.3f@." n minf maxf
        (Stats.load_imbalance s) util mpf;
      if n >= 2 && n <= 8 then
        balanced := !balanced && Stats.load_imbalance s < 2.0)
    [ 1; 2; 4; 8; 16 ];
  claim "hash partitioning keeps imbalance below 2x for N in 2..8" !balanced

(* ------------------------------------------------------------------ *)
(* P2: wall-clock behaviour of the true multicore runtime.             *)
(* ------------------------------------------------------------------ *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (Unix.gettimeofday () -. t0, x)

let median_time f =
  let samples = List.init 3 (fun _ -> fst (time_once f)) in
  List.nth (List.sort compare samples) 1

let p2 () =
  let cores = Domain.recommended_domain_count () in
  Format.printf
    "  machine offers %d core(s); speedup over the sequential engine is \
     only expected when N <= cores@."
    cores;
  let rng = Workload.Rng.create ~seed:8 in
  let edges = Workload.Graphgen.random_digraph rng ~nodes:220 ~edges:440 in
  let edb = edb_of edges in
  let seq_t =
    median_time (fun () -> ignore (Seminaive.evaluate ancestor edb))
  in
  Format.printf "  random-220x440; sequential semi-naive: %.3fs@." seq_t;
  Format.printf "  %-12s %2s %9s %9s %9s@." "scheme" "N" "time(s)"
    "speedup" "msgs";
  List.iter
    (fun (label, make) ->
      List.iter
        (fun n ->
          match make n with
          | Error e -> Format.printf "  %-12s %2d skipped: %s@." label n e
          | Ok rw ->
            let t, r = time_once (fun () -> Domain_runtime.run rw ~edb) in
            Format.printf "  %-12s %2d %9.3f %9.2f %9d@." label n t
              (seq_t /. t)
              (Stats.total_messages r.Sim_runtime.stats))
        [ 1; 2; 4 ])
    [
      ("nocomm", fun n -> Strategy.no_communication ~nprocs:n ancestor);
      ("example3", fun n -> Strategy.example3 ~nprocs:n ancestor);
    ];
  (* Multiplexing: N logical processors on a single domain removes the
     oversubscription cost on machines with fewer cores than
     processors. *)
  Format.printf "  %-22s %9s %9s@." "multiplexing (N=4)" "time(s)" "speedup";
  let rw = Result.get_ok (Strategy.example3 ~nprocs:4 ancestor) in
  List.iter
    (fun domains ->
      let t, _ =
        time_once (fun () ->
            Domain_runtime.run
              ~config:Run_config.(default |> with_domains (Some domains))
              rw ~edb)
      in
      Format.printf "  %-22s %9.3f %9.2f@."
        (Printf.sprintf "4 procs / %d domain(s)" domains)
        t (seq_t /. t))
    [ 1; 2; 4 ];
  claim "domain runtime agrees with the sequential answers"
    (let rw = Result.get_ok (Strategy.example3 ~nprocs:4 ancestor) in
     let seq_db, _ = Seminaive.evaluate ancestor edb in
     let r = Domain_runtime.run rw ~edb in
     Relation.equal
       (Database.get seq_db "anc")
       (Database.get r.Sim_runtime.answers "anc"))

(* ------------------------------------------------------------------ *)
(* P3: parallelism profile — when does the paper's parallelism pay?    *)
(* ------------------------------------------------------------------ *)

let p3 () =
  Format.printf
    "  tuples derived per round (the frontier) under example 3, N=8:@.";
  Format.printf "  %-16s %7s %9s %9s %10s@." "workload" "rounds"
    "peak/rnd" "mean/rnd" "peak-procs";
  let peaks = Hashtbl.create 4 in
  List.iter
    (fun (name, edges) ->
      let edb = edb_of edges in
      let rw = Result.get_ok (Strategy.example3 ~nprocs:8 ancestor) in
      let r = Sim_runtime.run rw ~edb in
      let s = r.Sim_runtime.stats in
      let profile = Stats.frontier_profile s in
      let peak = List.fold_left max 0 profile in
      let mean =
        float_of_int (List.fold_left ( + ) 0 profile)
        /. float_of_int (max 1 (List.length profile))
      in
      Hashtbl.replace peaks name peak;
      Format.printf "  %-16s %7d %9d %9.1f %10d@." name s.Stats.rounds peak
        mean
        (Stats.peak_parallelism s))
    (Lazy.force workloads);
  (* The structural claim: a chain's frontier is as thin as the data is
     deep, while bushy data keeps all processors busy. *)
  claim "bushy data yields a frontier orders wider than a chain's"
    (match
       Hashtbl.find_opt peaks "tree-d9", Hashtbl.find_opt peaks "chain-200"
     with
     | Some tree, Some chain -> tree > 4 * chain
     | _ -> false);
  claim "on bushy data every processor contributes in some round"
    (let edb = edb_of (List.assoc "tree-d9" (Lazy.force workloads)) in
     let rw = Result.get_ok (Strategy.example3 ~nprocs:8 ancestor) in
     let r = Sim_runtime.run rw ~edb in
     Stats.peak_parallelism r.Sim_runtime.stats = 8)

(* ------------------------------------------------------------------ *)
(* D8: the Dong [8] decomposition baseline (criticized in the intro).  *)
(* ------------------------------------------------------------------ *)

let d8 () =
  let nprocs = 4 in
  (* Data with K constant-disjoint components: Dong's best case at
     K >= nprocs, degenerate at K = 1. *)
  let shifted_chains k len =
    List.concat
      (List.init k (fun c ->
           List.map
             (fun (a, b) -> (a + (c * 10_000), b + (c * 10_000)))
             (Workload.Graphgen.chain len)))
  in
  Format.printf
    "  N=%d; per-row: components found, max/mean firing imbalance@." nprocs;
  Format.printf "  %-22s %11s %10s %12s %10s@." "workload" "components"
    "dong-imb" "dong-msgs" "hash-imb";
  let all_exact = ref true in
  let degenerate_imb = ref 0.0 in
  List.iter
    (fun (name, edges) ->
      let edb = edb_of edges in
      let seq, _ = Seminaive.evaluate ancestor edb in
      (match Decompose.run ancestor ~nprocs edb with
       | Error e -> Format.printf "  %-22s skipped: %s@." name e
       | Ok (r, a) ->
         let hash_rw = Result.get_ok (Strategy.example3 ~nprocs ancestor) in
         let hash_r = Sim_runtime.run hash_rw ~edb in
         let exact =
           Relation.equal (Database.get seq "anc")
             (Database.get r.Sim_runtime.answers "anc")
         in
         all_exact := !all_exact && exact;
         let dong_imb = Stats.load_imbalance r.Sim_runtime.stats in
         if a.Decompose.component_count = 1 then degenerate_imb := dong_imb;
         Format.printf "  %-22s %11d %10.2f %12d %10.2f@." name
           a.Decompose.component_count dong_imb
           (Stats.total_messages ~include_self:true r.Sim_runtime.stats)
           (Stats.load_imbalance hash_r.Sim_runtime.stats)))
    [
      ("8-disjoint-chains", shifted_chains 8 40);
      ("4-disjoint-chains", shifted_chains 4 80);
      ("2-disjoint-chains", shifted_chains 2 160);
      ("1-connected-cycle", Workload.Graphgen.cycle 100);
    ];
  claim "Dong's scheme is exact whenever it applies" !all_exact;
  claim
    "on connected data it degenerates to one busy processor (imbalance = N)"
    (!degenerate_imb >= float_of_int nprocs -. 0.01)

(* ------------------------------------------------------------------ *)
(* A1-A4: ablations.                                                   *)
(* ------------------------------------------------------------------ *)

let a1 () =
  (* Resend suppression (the paper's difference operation). *)
  let edb = edb_of (Workload.Graphgen.binary_tree ~depth:8) in
  let rw = Result.get_ok (Strategy.example3 ~nprocs:4 ancestor) in
  let normal = Sim_runtime.run rw ~edb in
  let noisy =
    Sim_runtime.run
      ~config:Run_config.(default |> with_resend_all true)
      rw ~edb
  in
  let m1 = Stats.total_messages ~include_self:true normal.Sim_runtime.stats in
  let m2 = Stats.total_messages ~include_self:true noisy.Sim_runtime.stats in
  Format.printf
    "  with difference operation: %d tuples sent; without: %d (x%.1f)@." m1
    m2
    (float_of_int m2 /. float_of_int (max 1 m1));
  claim "suppressing resends saves traffic" (m1 < m2);
  claim "and does not change the answers"
    (Database.equal normal.Sim_runtime.answers noisy.Sim_runtime.answers)

let a2 () =
  (* Unicast send analysis vs forced broadcast: same join, but
     discriminating on <X, Z> hides the coverage of the recursive atom
     and forces broadcast sends. *)
  let edb = edb_of (Workload.Graphgen.binary_tree ~depth:8) in
  let unicast = Result.get_ok (Strategy.example3 ~nprocs:4 ancestor) in
  let broadcast =
    Result.get_ok
      (Strategy.hash_q ~nprocs:4 ~ve:[ "X" ] ~vr:[ "X"; "Z" ] ancestor)
  in
  let ru = Verify.check unicast ~edb in
  let rb = Verify.check broadcast ~edb in
  Format.printf "  unicast   v(r)=<Z>:   %7d messages@." ru.Verify.messages;
  Format.printf "  broadcast v(r)=<X,Z>: %7d messages@." rb.Verify.messages;
  claim "both are exact" (ru.Verify.equal_answers && rb.Verify.equal_answers);
  claim "coverage analysis (unicast) sends less"
    (ru.Verify.messages < rb.Verify.messages)

let a3 () =
  (* Guard push-down vs post-join filtering: identical results, very
     different work. We time the simulated run both ways. *)
  let rng = Workload.Rng.create ~seed:4 in
  let edb = edb_of (Workload.Graphgen.random_digraph rng ~nodes:120 ~edges:240) in
  let rw = Result.get_ok (Strategy.example3 ~nprocs:4 ancestor) in
  let t_push, r_push = time_once (fun () -> Sim_runtime.run rw ~edb) in
  let t_flat, r_flat =
    time_once (fun () ->
        Sim_runtime.run
          ~config:Run_config.(default |> with_pushdown false)
          rw ~edb)
  in
  Format.printf "  guard pushed into the join: %.3fs;  post-join: %.3fs@."
    t_push t_flat;
  claim "identical answers"
    (Database.equal r_push.Sim_runtime.answers r_flat.Sim_runtime.answers);
  claim "identical firing counts (the guard is semantic, not heuristic)"
    (Stats.total_firings r_push.Sim_runtime.stats
     = Stats.total_firings r_flat.Sim_runtime.stats)

let a4 () =
  (* Fragmentation vs full replication of the base relations. *)
  let edb = edb_of (Workload.Graphgen.binary_tree ~depth:8) in
  let rw = Result.get_ok (Strategy.example3 ~nprocs:4 ancestor) in
  let frag = Sim_runtime.run rw ~edb in
  let repl =
    Sim_runtime.run
      ~config:Run_config.(default |> with_replicate_base true)
      rw ~edb
  in
  let b1 = Stats.total_base_resident frag.Sim_runtime.stats in
  let b2 = Stats.total_base_resident repl.Sim_runtime.stats in
  Format.printf "  fragmented residency: %d tuples; replicated: %d@." b1 b2;
  claim "fragmentation shrinks the per-processor footprint" (b1 < b2);
  claim "answers unchanged"
    (Database.equal frag.Sim_runtime.answers repl.Sim_runtime.answers)

let a5 () =
  (* Greedy join reordering vs textual order, on a rule whose textual
     order starts with a cross product. *)
  let program =
    Parser.program_exn
      "p(X,Y) :- a(X), b(Y), ab(X,Y).
       tc(X,Y) :- ab(X,Y). tc(X,Y) :- ab(X,Z), tc(Z,Y)."
  in
  let rng = Workload.Rng.create ~seed:23 in
  let db = Database.create () in
  for i = 0 to 399 do
    ignore (Database.add_fact db "a" (Tuple.of_ints [ i ]));
    ignore (Database.add_fact db "b" (Tuple.of_ints [ i + 1000 ]))
  done;
  List.iter
    (fun (x, y) ->
      ignore (Database.add_fact db "ab" (Tuple.of_ints [ x; y + 1000 ])))
    (Workload.Graphgen.random_digraph rng ~nodes:400 ~edges:800);
  let t_plain, (r_plain, s_plain) =
    time_once (fun () -> Seminaive.evaluate program db)
  in
  let t_opt, (r_opt, s_opt) =
    time_once (fun () -> Seminaive.evaluate ~reorder:true program db)
  in
  Format.printf
    "  textual order: %.3fs;  greedy bound-first order: %.3fs (x%.1f)@."
    t_plain t_opt (t_plain /. max 1e-9 t_opt);
  claim "identical answers" (Database.equal r_plain r_opt);
  claim "identical firing counts"
    (s_plain.Seminaive.firings = s_opt.Seminaive.firings);
  claim "reordering is not slower on the cross-product rule"
    (t_opt <= t_plain *. 1.10)

(* ------------------------------------------------------------------ *)
(* R1: robustness — the fault sweep and the checkpoint ablation.       *)
(* ------------------------------------------------------------------ *)

let r1 () =
  let rw = Result.get_ok (Strategy.example3 ~seed:0 ~nprocs:4 ancestor) in
  (* 1. Fault sweep: seeded loss, duplication, reordering, delay and a
     mid-run crash on every workload — the pooled answers never drift
     from the sequential least model. *)
  let all_exact = ref true in
  List.iter
    (fun (name, edges) ->
      let edb = edb_of edges in
      List.iter
        (fun drop ->
          let plan =
            Fault.make ~seed:11 ~drop ~dup:(drop /. 2.) ~reorder:0.15
              ~delay:0.15 ~max_delay:3
              ~crashes:[ { Fault.cr_pid = 2; cr_round = 5; cr_down = 3 } ]
              ()
          in
          let config =
            Run_config.(
              default |> with_fault plan |> with_max_rounds 500_000)
          in
          let r = Verify.check ~config rw ~edb in
          let f = r.Verify.stats.Stats.faults in
          Format.printf
            "  %-16s drop=%.2f  rounds=%5d  drops=%6d retransmits=%6d \
             crashes=%d  equal=%b@."
            name drop r.Verify.stats.Stats.rounds f.Stats.drops
            f.Stats.retransmits f.Stats.crashes r.Verify.equal_answers;
          if not r.Verify.equal_answers then all_exact := false)
        [ 0.0; 0.1; 0.3 ])
    (Lazy.force workloads);
  claim "pooled answers equal the sequential run under every fault plan"
    !all_exact;
  (* 2. Recovery-cost ablation: one crash, decreasing checkpoint
     interval. The lost bucket re-derives everything since the last
     stable-storage write, so total firings (lost work included) fall
     as checkpoints become more frequent. *)
  let edb = edb_of (Workload.Graphgen.chain 200) in
  let baseline =
    Stats.total_firings (Sim_runtime.run rw ~edb).Sim_runtime.stats
  in
  let cost checkpoint_every =
    let plan =
      Fault.make ~seed:3
        ~crashes:[ { Fault.cr_pid = 1; cr_round = 60; cr_down = 4 } ]
        ?checkpoint_every ()
    in
    let config =
      Run_config.(default |> with_fault plan |> with_max_rounds 500_000)
    in
    let r = Sim_runtime.run ~config rw ~edb in
    let c = Stats.total_firings r.Sim_runtime.stats - baseline in
    Format.printf "  checkpoint interval %-5s  redundant firings: %6d@."
      (match checkpoint_every with
       | None -> "-"
       | Some k -> string_of_int k)
      c;
    c
  in
  let none = cost None in
  let k32 = cost (Some 32) in
  let k8 = cost (Some 8) in
  let k2 = cost (Some 2) in
  claim "recovery cost falls as the checkpoint interval shrinks"
    (none >= k32 && k32 >= k8 && k8 >= k2);
  claim "per-2-round checkpoints beat recovery from the base fragment"
    (k2 < none);
  (* 3. The domain runtime survives the same plans. *)
  let plan =
    Fault.make ~seed:5 ~drop:0.2 ~dup:0.1
      ~crashes:[ { Fault.cr_pid = 1; cr_round = 3; cr_down = 1 } ]
      ()
  in
  let edb = edb_of (Workload.Graphgen.cycle 60) in
  let seq, _ = Seminaive.evaluate ancestor edb in
  let dom =
    Domain_runtime.run ~config:Run_config.(default |> with_fault plan) rw ~edb
  in
  claim "domain runtime under faults agrees with the sequential answers"
    (Relation.equal
       (Database.get seq "anc")
       (Database.get dom.Sim_runtime.answers "anc"))

(* ------------------------------------------------------------------ *)
(* R2: overload — skewed traffic under credit, budgets and the dial.   *)
(* ------------------------------------------------------------------ *)

let r2 () =
  (* A hot-spot workload: ~90% of edges leave two hub nodes, so the
     processors owning the hub values take most of the traffic. *)
  let rng = Workload.Rng.create ~seed:7 in
  let edges = Workload.Graphgen.hotspot rng ~nodes:50 ~edges:220 ~hubs:2 in
  let edb = edb_of edges in
  let rw = Result.get_ok (Strategy.example3 ~seed:0 ~nprocs:4 ancestor) in
  let seq, _ = Seminaive.evaluate ancestor edb in
  let seq_anc = Database.get seq "anc" in
  (* 1. Capacity sweep: tighter credit stretches the run over more
     rounds and stalls senders, but never changes the answers and never
     lets a channel exceed its credit. *)
  let all_exact = ref true and all_bounded = ref true in
  List.iter
    (fun capacity ->
      let config =
        Run_config.(
          default |> with_capacity capacity |> with_max_rounds 500_000)
      in
      let r = Sim_runtime.run ~config rw ~edb in
      let s = r.Sim_runtime.stats in
      Format.printf
        "  capacity %-4s rounds=%5d  peak=%2d  stalls=%6d  equal=%b@."
        (match capacity with
         | None -> "-"
         | Some k -> string_of_int k)
        s.Stats.rounds s.Stats.peak_in_flight
        s.Stats.faults.Stats.credit_stalls
        (Relation.equal seq_anc (Database.get r.Sim_runtime.answers "anc"));
      if not (Relation.equal seq_anc (Database.get r.Sim_runtime.answers "anc"))
      then all_exact := false;
      (match capacity with
       | Some k when s.Stats.peak_in_flight > k -> all_bounded := false
       | Some _ | None -> ()))
    [ None; Some 8; Some 2; Some 1 ];
  claim "backpressure never changes the answers" !all_exact;
  claim "observed in-flight peak never exceeds the credit" !all_bounded;
  (* 2. Adaptive degradation: under the same skew and a tight credit,
     the dial trades communication for duplicated local firings. *)
  let static =
    let rw = Result.get_ok (Strategy.tradeoff ~seed:0 ~nprocs:4 ~alpha:0.0 ancestor) in
    Sim_runtime.run
      ~config:
        Run_config.(
          default |> with_capacity (Some 2) |> with_max_rounds 500_000)
      rw ~edb
  in
  let dial = Overload.dial ~high_water:4 ~nprocs:4 () in
  let adaptive =
    let rw =
      Result.get_ok (Strategy.adaptive_tradeoff ~seed:0 ~nprocs:4 ~dial ancestor)
    in
    Sim_runtime.run
      ~config:
        Run_config.(
          default |> with_capacity (Some 2) |> with_dial (Some dial)
          |> with_max_rounds 500_000)
      rw ~edb
  in
  let messages r = Stats.total_messages r.Sim_runtime.stats in
  Format.printf
    "  static alpha=0: %5d messages;  adaptive: %5d (raises=%d decays=%d)@."
    (messages static) (messages adaptive)
    adaptive.Sim_runtime.stats.Stats.faults.Stats.alpha_raises
    adaptive.Sim_runtime.stats.Stats.faults.Stats.alpha_decays;
  claim "the dial engages under skewed backlog"
    (adaptive.Sim_runtime.stats.Stats.faults.Stats.alpha_raises > 0);
  claim "adaptive degradation sheds messages"
    (messages adaptive <= messages static);
  claim "and stays exact (Theorem 4 under a dynamic alpha)"
    (Relation.equal seq_anc (Database.get adaptive.Sim_runtime.answers "anc"));
  (* 3. The watchdog: a breached budget is a structured outcome with
     partial statistics, not a hang or an OOM. *)
  let structured =
    match
      Sim_runtime.run
        ~config:
          Run_config.(
            default
            |> with_limits
                 { Overload.no_limits with max_store_rows = Some 40 })
        rw ~edb
    with
    | _ -> false
    | exception Overload.Overload { reason; stats } ->
      Format.printf "  watchdog: %a (after %d rounds)@." Overload.pp_reason
        reason stats.Stats.rounds;
      stats.Stats.nprocs = 4
  in
  claim "a breached budget aborts with partial stats" structured

(* ------------------------------------------------------------------ *)
(* Timing microbenches (Bechamel).                                     *)
(* ------------------------------------------------------------------ *)

let timing () =
  let open Bechamel in
  let open Toolkit in
  let chain_edb = edb_of (Workload.Graphgen.chain 60) in
  let rng = Workload.Rng.create ~seed:12 in
  let rand_edb =
    edb_of (Workload.Graphgen.random_digraph rng ~nodes:40 ~edges:80)
  in
  let h = Hash_fn.modulo ~nprocs:8 ~arity:2 () in
  let hb = Hash_fn.bitvec ~arity:2 () in
  let key = [| Const.int 42; Const.int 77 |] in
  let rw3 = Result.get_ok (Strategy.example3 ~nprocs:4 ancestor) in
  let tests =
    [
      Test.make ~name:"seminaive/chain-60"
        (Staged.stage (fun () -> Seminaive.evaluate ancestor chain_edb));
      Test.make ~name:"seminaive/random-40x80"
        (Staged.stage (fun () -> Seminaive.evaluate ancestor rand_edb));
      Test.make ~name:"naive/chain-60"
        (Staged.stage (fun () -> Naive.evaluate ancestor chain_edb));
      Test.make ~name:"stratified/3-strata-random"
        (Staged.stage
           (let program =
              Parser.program_exn
                "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).
                 twohop(X,Y) :- tc(X,Z), tc(Z,Y).
                 triangle(X) :- twohop(X,X)."
            in
            let rng = Workload.Rng.create ~seed:3 in
            let db =
              Workload.Edb.of_edges ~pred:"e"
                (Workload.Graphgen.random_digraph rng ~nodes:30 ~edges:60)
            in
            fun () -> Stratified.evaluate program db));
      Test.make ~name:"plain/3-strata-random"
        (Staged.stage
           (let program =
              Parser.program_exn
                "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).
                 twohop(X,Y) :- tc(X,Z), tc(Z,Y).
                 triangle(X) :- twohop(X,X)."
            in
            let rng = Workload.Rng.create ~seed:3 in
            let db =
              Workload.Edb.of_edges ~pred:"e"
                (Workload.Graphgen.random_digraph rng ~nodes:30 ~edges:60)
            in
            fun () -> Seminaive.evaluate program db));
      Test.make ~name:"sim-runtime/example3-N4-chain-60"
        (Staged.stage (fun () -> Sim_runtime.run rw3 ~edb:chain_edb));
      Test.make ~name:"hash/modulo-pair"
        (Staged.stage (fun () -> Hash_fn.apply h key));
      Test.make ~name:"hash/bitvec-pair"
        (Staged.stage (fun () -> Hash_fn.apply hb key));
    ]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Format.printf "  %-34s %14s@." "benchmark" "ns/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Format.printf "  %-34s %14.1f@." name t
          | _ -> Format.printf "  %-34s %14s@." name "-")
        results)
    tests

(* ------------------------------------------------------------------ *)
(* OBS: observability — metrics cross-check and the PR4 baseline.      *)
(* ------------------------------------------------------------------ *)

let obs () =
  let runs = ref [] in
  let run_one name ?(fault = Fault.none) edges =
    let rw = Result.get_ok (Strategy.example3 ~seed:0 ~nprocs:4 ancestor) in
    let metrics = Obs.Metrics.create () in
    let trace = Obs.Trace.create () in
    let config =
      Run_config.(
        default |> with_fault fault |> with_max_rounds 500_000
        |> with_obs { Obs.trace; metrics })
    in
    let r = Sim_runtime.run ~config rw ~edb:(edb_of edges) in
    let s = r.Sim_runtime.stats in
    claim (name ^ ": metrics firings = Stats firings")
      (Obs.Metrics.counter metrics "runtime.firings" = Stats.total_firings s);
    claim (name ^ ": metrics tuples_sent = Stats messages")
      (Obs.Metrics.counter metrics "runtime.tuples_sent"
      = Stats.total_messages ~include_self:true s);
    claim (name ^ ": enabled tracing recorded spans")
      (Obs.Trace.event_count trace > 0);
    Format.printf "  %-18s firings=%6d  messages=%6d  trace events=%6d@." name
      (Stats.total_firings s)
      (Stats.total_messages ~include_self:true s)
      (Obs.Trace.event_count trace);
    runs := (name, s, metrics) :: !runs
  in
  List.iter
    (fun (name, edges) -> run_one name edges)
    (Lazy.force workloads);
  (* One faulty run: loss plus a mid-run crash, still exact and still
     accounted tuple-for-tuple by the metrics registry. *)
  let plan =
    Fault.make ~seed:2026 ~drop:0.05
      ~crashes:[ { Fault.cr_pid = 1; cr_round = 4; cr_down = 2 } ]
      ()
  in
  run_one "faulty-chain-200" ~fault:plan (Workload.Graphgen.chain 200);
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":1,\"bench\":\"PR4\",\"seed\":2026,\"runs\":[";
  List.iteri
    (fun i (name, s, metrics) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":%S,\"stats\":%s,\"metrics\":%s}" name
           (Stats.to_json s)
           (Obs.Metrics.to_json metrics)))
    (List.rev !runs);
  Buffer.add_string buf "]}\n";
  let oc = open_out "BENCH_PR4.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "  wrote BENCH_PR4.json (%d runs)@." (List.length !runs)

(* ------------------------------------------------------------------ *)
(* PERF: the hot-path storage engine — wall-clock and the PR5 baseline.*)
(* ------------------------------------------------------------------ *)

(* Per-round wall-clock of the sequential engine on three shapes.
   Fixed seeds, median of five runs. The pre-change constants were
   measured by the same driver on the list-backed storage layer
   immediately before the PR5 rewrite (same machine, same convention:
   median total ns / semi-naive iterations). *)
let regression_threshold = 1.5

let perf_workloads () =
  let rng = Workload.Rng.create ~seed:2026 in
  [
    ("chain-200", 222_552., Workload.Graphgen.chain 200);
    ("grid-16", 1_417_033., Workload.Graphgen.grid ~rows:16 ~cols:16);
    ( "hotspot-50x220",
      968_150.,
      Workload.Graphgen.hotspot rng ~nodes:50 ~edges:220 ~hubs:2 );
  ]

let measure_per_round edb =
  let samples =
    List.init 5 (fun _ ->
        time_once (fun () -> Seminaive.evaluate ancestor edb))
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) samples in
  let t, (_db, stats) = List.nth sorted 2 in
  (t *. 1e9 /. float_of_int (max 1 stats.Seminaive.iterations), stats)

let perf () =
  Format.printf "  %-16s %10s %12s %8s %9s %5s@." "workload" "ns/round"
    "pre-change" "speedup" "firings" "dups";
  let rows =
    List.map
      (fun (name, pre, edges) ->
        let per_round, stats = measure_per_round (edb_of edges) in
        let speedup = pre /. per_round in
        Format.printf "  %-16s %10.0f %12.0f %7.2fx %9d %5d@." name
          per_round pre speedup stats.Seminaive.firings
          stats.Seminaive.duplicate_firings;
        (name, pre, per_round, stats, speedup))
      (perf_workloads ())
  in
  (* One simulated-runtime run so the baseline also records where the
     wall-clock goes per executor phase (Stats.phase_ns). *)
  let rw = Result.get_ok (Strategy.example3 ~seed:0 ~nprocs:4 ancestor) in
  let r = Sim_runtime.run rw ~edb:(edb_of (Workload.Graphgen.chain 200)) in
  let phases = r.Sim_runtime.stats.Stats.phase_ns in
  Format.printf "  sim-runtime phase wall-clock (chain-200, N=4):@.";
  List.iter
    (fun (name, ns) -> Format.printf "    %-18s %10d ns@." name ns)
    phases;
  claim "phase timers cover sending, receiving and processing"
    (List.for_all
       (fun p -> List.mem_assoc p phases)
       [ "sending"; "receiving"; "processing" ]);
  claim "chain ancestor stays duplicate-free (non-redundant engine)"
    (List.for_all
       (fun (name, _, _, s, _) ->
         name <> "chain-200" || s.Seminaive.duplicate_firings = 0)
       rows);
  claim
    (Printf.sprintf "per-round speedup vs the pre-change tree >= %.1fx"
       regression_threshold)
    (List.for_all (fun (_, _, _, _, sp) -> sp >= regression_threshold) rows);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":1,\"bench\":\"PR5\",\"seed\":2026,\"threshold\":%.2f,\"workloads\":["
       regression_threshold);
  List.iteri
    (fun i (name, pre, per_round, (s : Seminaive.stats), speedup) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%S,\"per_round_ns\":%.0f,\"rounds\":%d,\"firings\":%d,\"duplicate_firings\":%d,\"pre_change_ns\":%.0f,\"speedup_vs_pre\":%.2f}"
           name per_round s.Seminaive.iterations s.Seminaive.firings
           s.Seminaive.duplicate_firings pre speedup))
    rows;
  Buffer.add_string buf "],\"phase_ns\":{";
  List.iteri
    (fun i (name, ns) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" name ns))
    phases;
  Buffer.add_string buf "}}\n";
  let oc = open_out out_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "  wrote %s@." out_file

(* The regression gate: re-measure the perf workloads and compare each
   against the committed baseline, reading its JSON with a plain
   substring scan (ints and floats only, no parser dependency). *)
let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some (i + m)
    else go (i + 1)
  in
  go from

let number_after s needle from =
  match find_sub s needle from with
  | None -> None
  | Some i ->
    let n = String.length s in
    let j = ref i in
    while
      !j < n
      && (match s.[!j] with '0' .. '9' | '.' | '-' -> true | _ -> false)
    do
      incr j
    done;
    if !j = i then None else Some (float_of_string (String.sub s i (!j - i)))

let run_regression baseline_file =
  let content =
    let ic = open_in baseline_file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let threshold =
    Option.value ~default:regression_threshold
      (number_after content "\"threshold\":" 0)
  in
  Format.printf "checking wall-clock against %s (threshold %.2fx)%s@."
    baseline_file threshold
    (if slowdown <> 1.0 then
       Printf.sprintf " with injected %.2fx slowdown" slowdown
     else "");
  Format.printf "  %-16s %10s %10s %6s  %s@." "workload" "baseline"
    "current" "ratio" "";
  let ok = ref true in
  List.iter
    (fun (name, _pre, edges) ->
      let per_round, _ = measure_per_round (edb_of edges) in
      let per_round = per_round *. slowdown in
      match
        find_sub content (Printf.sprintf "\"name\":%S" name) 0
        |> Option.map (fun i -> number_after content "\"per_round_ns\":" i)
      with
      | None | Some None ->
        Format.printf "  %-16s missing from the baseline@." name;
        ok := false
      | Some (Some baseline) ->
        let ratio = per_round /. baseline in
        let pass = ratio <= threshold in
        if not pass then ok := false;
        Format.printf "  %-16s %10.0f %10.0f %5.2fx  %s@." name baseline
          per_round ratio
          (if pass then "ok" else "REGRESSION"))
    (perf_workloads ());
  if !ok then begin
    Format.printf "no perf regression@.";
    exit 0
  end
  else begin
    Format.printf "perf regression: a workload slowed beyond %.2fx@."
      threshold;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* PERF2: hot-path round 2 — columnar slabs, batched mailboxes (PR10). *)
(* ------------------------------------------------------------------ *)

(* Per-round wall-clock measured by this driver on the boxed storage
   layer immediately before the PR10 columnar rewrite (same machine,
   same median-of-five convention as the PR5 constants — which were
   themselves measured before the PR5 rewrite, so the two baselines
   chain: PR5 pre -> PR5 post = PR10 pre -> PR10 post). *)
let perf2_pre =
  [
    ("chain-200", 215_181.);
    ("grid-16", 1_300_740.);
    ("hotspot-50x220", 822_272.);
  ]

(* The columnar engine still allocates the derived tuples themselves;
   the bound asserts the flat slabs killed the per-round bookkeeping
   churn (boxed storage sat well above it). Words, not bytes. *)
let minor_words_bound = 40_000.

let perf2 () =
  Format.printf "  %-16s %10s %12s %8s %9s %5s@." "workload" "ns/round"
    "pre-PR10" "speedup" "firings" "dups";
  let rows =
    List.map
      (fun (name, _pr5_pre, edges) ->
        let pre = List.assoc name perf2_pre in
        let per_round, stats = measure_per_round (edb_of edges) in
        let speedup = pre /. per_round in
        Format.printf "  %-16s %10.0f %12.0f %7.2fx %9d %5d@." name
          per_round pre speedup stats.Seminaive.firings
          stats.Seminaive.duplicate_firings;
        (name, pre, per_round, stats, speedup))
      (perf_workloads ())
  in
  (* Allocation discipline of the steady-state round on the chain:
     flat slabs insert and probe without boxing, so what remains is
     dominated by the derived tuples themselves. *)
  let minor_per_round =
    let engine =
      Seminaive.create ancestor ~edb:(edb_of (Workload.Graphgen.chain 200))
    in
    let before = Gc.minor_words () in
    Seminaive.run_to_fixpoint engine;
    let words = Gc.minor_words () -. before in
    words
    /. float_of_int
         (max 1 (Seminaive.stats engine).Seminaive.iterations)
  in
  Format.printf "  chain-200 allocation: %.0f minor words/round@."
    minor_per_round;
  (* One domain-runtime run for the other half of the PR: phase
     attribution plus the send-coalescing counters (schema 5). *)
  let rw = Result.get_ok (Strategy.example3 ~seed:0 ~nprocs:4 ancestor) in
  let r = Domain_runtime.run rw ~edb:(edb_of (Workload.Graphgen.chain 200)) in
  let st = r.Sim_runtime.stats in
  let comms = st.Stats.comms in
  Format.printf
    "  domain runtime (chain-200, N=4): %d bulk deliveries carrying %d \
     data messages@."
    comms.Stats.bulk_pushes comms.Stats.bulk_messages;
  List.iter
    (fun (name, ns) -> Format.printf "    %-18s %10d ns@." name ns)
    st.Stats.phase_ns;
  let fast =
    List.filter (fun (_, _, _, _, sp) -> sp >= regression_threshold) rows
  in
  claim
    (Printf.sprintf
       "per-round speedup vs the pre-PR10 tree >= %.1fx on >= 2 of %d \
        workloads"
       regression_threshold (List.length rows))
    (List.length fast >= 2);
  claim "chain ancestor stays duplicate-free (non-redundant engine)"
    (List.for_all
       (fun (name, _, _, s, _) ->
         name <> "chain-200" || s.Seminaive.duplicate_firings = 0)
       rows);
  claim
    (Printf.sprintf "chain-200 allocates < %.0fk minor words per round"
       (minor_words_bound /. 1000.))
    (minor_per_round < minor_words_bound);
  claim "~intern:false (boxed storage) computes the identical model"
    (let edb = edb_of (Workload.Graphgen.grid ~rows:8 ~cols:8) in
     let db_slab, _ = Seminaive.evaluate ancestor edb in
     let db_boxed, _ = Seminaive.evaluate ~intern:false ancestor edb in
     Database.equal db_slab db_boxed);
  claim "domain runtime coalesces its data sends (bulk counters live)"
    (comms.Stats.bulk_pushes > 0
    && comms.Stats.bulk_messages >= comms.Stats.bulk_pushes);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":1,\"bench\":\"PR10\",\"seed\":2026,\"threshold\":%.2f,\"workloads\":["
       regression_threshold);
  List.iteri
    (fun i (name, pre, per_round, (s : Seminaive.stats), speedup) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%S,\"per_round_ns\":%.0f,\"rounds\":%d,\"firings\":%d,\"duplicate_firings\":%d,\"pre_change_ns\":%.0f,\"speedup_vs_pre\":%.2f}"
           name per_round s.Seminaive.iterations s.Seminaive.firings
           s.Seminaive.duplicate_firings pre speedup))
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"minor_words_per_round\":%.0f,\"comms\":{\"bulk_pushes\":%d,\"bulk_messages\":%d},\"phase_ns\":{"
       minor_per_round comms.Stats.bulk_pushes comms.Stats.bulk_messages);
  List.iteri
    (fun i (name, ns) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" name ns))
    st.Stats.phase_ns;
  Buffer.add_string buf "}}\n";
  let oc = open_out "BENCH_PR10.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "  wrote BENCH_PR10.json@."

(* ------------------------------------------------------------------ *)
(* INCR: incremental maintenance vs from-scratch recomputation.        *)
(* ------------------------------------------------------------------ *)

(* One session per workload stays resident; the measured operation is a
   two-batch toggle — insert a fresh source edge into the graph, then
   retract it (so insertion propagation and DRed deletion are both in
   the measured path, and the model returns to its start state between
   samples). The baseline is what a batch-oriented caller would do
   instead: a full from-scratch run of the same rewrite on the same
   runtime. *)
let incr_bench () =
  let rw = Result.get_ok (Strategy.general ~seed:0 ~nprocs:4 ancestor) in
  Format.printf "  %-16s %12s %12s %8s %11s %10s@." "workload" "apply(ns)"
    "scratch(ns)" "speedup" "batch-fire" "full-fire";
  let rows =
    List.map
      (fun (name, _pre, edges) ->
        let edb = edb_of edges in
        let max_node =
          List.fold_left (fun m (a, b) -> max m (max a b)) 0 edges
        in
        let entry, _ = List.hd edges in
        let fresh = Tuple.of_ints [ max_node + 1; entry ] in
        let ins =
          Update_batch.of_list [ Delta.Batch.insert "par" fresh ]
        in
        let del =
          Update_batch.of_list [ Delta.Batch.delete "par" fresh ]
        in
        let s = Sim_runtime.open_session rw ~edb in
        (* One unmeasured toggle warms the session's resident state. *)
        ignore (Session.apply s ins);
        ignore (Session.apply s del);
        let batch_firings = ref 0 in
        let samples =
          List.init 5 (fun _ ->
              let t0 = Unix.gettimeofday () in
              let oi = Session.apply s ins in
              let od = Session.apply s del in
              let t = Unix.gettimeofday () -. t0 in
              batch_firings :=
                max !batch_firings
                  (oi.Session.oc_summary.Datalog.Delta.s_firings
                  + od.Session.oc_summary.Datalog.Delta.s_firings);
              t /. 2.)
        in
        let apply_t = List.nth (List.sort compare samples) 2 in
        ignore (Session.close s);
        let scratch_samples =
          List.init 5 (fun _ ->
              fst (time_once (fun () -> Sim_runtime.run rw ~edb)))
        in
        let scratch_t = List.nth (List.sort compare scratch_samples) 2 in
        let full = Sim_runtime.run rw ~edb in
        let full_firings = Stats.total_firings full.Sim_runtime.stats in
        let speedup = scratch_t /. max 1e-9 apply_t in
        Format.printf "  %-16s %12.0f %12.0f %7.1fx %11d %10d@." name
          (apply_t *. 1e9) (scratch_t *. 1e9) speedup !batch_firings
          full_firings;
        (name, apply_t, scratch_t, speedup, !batch_firings, full_firings))
      (perf_workloads ())
  in
  claim "small-batch apply is >= 5x faster than from-scratch everywhere"
    (List.for_all (fun (_, _, _, sp, _, _) -> sp >= 5.0) rows);
  claim "maintenance fires a fraction of the full recomputation"
    (List.for_all (fun (_, _, _, _, bf, ff) -> bf * 2 < ff) rows);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "{\"schema\":1,\"bench\":\"INCR\",\"seed\":2026,\"runtime\":\"sim\",\"nprocs\":4,\"batch\":\"toggle one source edge\",\"workloads\":[";
  List.iteri
    (fun i (name, apply_t, scratch_t, speedup, bf, ff) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%S,\"apply_ns\":%.0f,\"scratch_ns\":%.0f,\"speedup\":%.1f,\"batch_firings\":%d,\"full_firings\":%d}"
           name (apply_t *. 1e9) (scratch_t *. 1e9) speedup bf ff))
    rows;
  Buffer.add_string buf "]}\n";
  let oc = open_out "BENCH_INCR.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "  wrote BENCH_INCR.json@."

(* ------------------------------------------------------------------ *)
(* PLAN: the static planner's pick vs the CLI default scheme.          *)
(* ------------------------------------------------------------------ *)

let plan_bench () =
  Format.printf "  %-16s %-26s %9s %9s %10s %10s@." "workload" "auto scheme"
    "auto msg" "dflt msg" "auto ns/r" "dflt ns/r";
  let measure rw edb =
    let r = Sim_runtime.run rw ~edb in
    let stats = r.Sim_runtime.stats in
    let messages = Stats.total_messages stats in
    let ns =
      List.fold_left (fun acc (_, n) -> acc + n) 0 stats.Stats.phase_ns
    in
    (messages, float_of_int ns /. float_of_int (max 1 stats.Stats.rounds))
  in
  let rows =
    List.map
      (fun (name, _, edges) ->
        let edb = edb_of edges in
        let profile = Check.Costmodel.profile_of_db edb in
        let outcome =
          Check.Planner.suggest ~profile ~nprocs:4 ~seed:0 ancestor
        in
        let plan = Option.get outcome.Check.Planner.plan in
        let auto_rw = Result.get_ok (Plan.to_rewrite plan ancestor) in
        let default_rw =
          Result.get_ok (Strategy.general ~seed:0 ~nprocs:4 ancestor)
        in
        let auto_msg, auto_ns = measure auto_rw edb in
        let dflt_msg, dflt_ns = measure default_rw edb in
        let scheme = Format.asprintf "%a" Plan.pp_scheme plan.Plan.scheme in
        Format.printf "  %-16s %-26s %9d %9d %10.0f %10.0f@." name scheme
          auto_msg dflt_msg auto_ns dflt_ns;
        (name, Plan.scheme_name plan.Plan.scheme, auto_msg, dflt_msg, auto_ns,
         dflt_ns))
      (perf_workloads ())
  in
  claim "auto-picked scheme sends no more messages than the default"
    (List.for_all (fun (_, _, a, d, _, _) -> a <= d) rows);
  claim "planner certifies a communication-free scheme for ancestor"
    (List.for_all (fun (_, _, a, _, _, _) -> a = 0) rows);
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "{\"schema\":1,\"bench\":\"PLAN\",\"seed\":2026,\"workloads\":[";
  List.iteri
    (fun i (name, scheme, a, d, ans, dns) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%S,\"auto_scheme\":%S,\"auto_messages\":%d,\"default_messages\":%d,\"auto_ns_per_round\":%.0f,\"default_ns_per_round\":%.0f}"
           name scheme a d ans dns))
    rows;
  Buffer.add_string buf "]}\n";
  let oc = open_out "BENCH_PLAN.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "  wrote BENCH_PLAN.json@."

(* ------------------------------------------------------------------ *)
(* NET: domains vs processes, and the price of crash recovery.         *)
(* ------------------------------------------------------------------ *)

(* The same rewrite drives both executors, so the comparison isolates
   the runtime: shared-memory mailboxes between domains against
   length-prefixed frames over Unix-domain sockets between forked
   processes, with the coordinator relaying every batch. Workers
   rebuild the rewrite from program text, hence the inline source. *)
let net_text = "anc(X,Y) :- par(X,Y).\nanc(X,Y) :- anc(X,Z), par(Z,Y).\n"
(* Discriminating on Y (not the preserved X) keeps tuples migrating,
   so the wire actually carries the recursion's traffic. *)
let net_spec = Net.Wire.Spec_q { ve = [ "Y" ]; vr = [ "Y" ] }

(* Wide failure-detector window: on an oversubscribed box (the bench
   often shares one core with its own workers) a busy worker can miss
   the default 1s heartbeat deadline and trigger a spurious restart,
   which inflates the message counts the bench asserts exact. Real
   worker death is caught by socket EOF regardless, so recovery
   latency in the crash study is unaffected. *)
let net_run ?(config = Run_config.default) ~procs rw ~edb =
  Net.Net_runtime.run ~config ~program:net_text ~spec:net_spec ~seed:0 ~procs
    ~hb_ms:100 ~hb_miss_limit:100 ~spawn:Net.Net_runtime.Fork rw ~edb

let net_bench () =
  let program = Parser.program_exn net_text in
  let rw =
    Result.get_ok
      (Strategy.hash_q ~seed:0 ~nprocs:4 ~ve:[ "Y" ] ~vr:[ "Y" ] program)
  in
  let edges = Workload.Graphgen.chain 400 in
  let edb = edb_of edges in
  let seq_db, _ = Seminaive.evaluate program edb in
  let seq_t =
    median_time (fun () -> ignore (Seminaive.evaluate program edb))
  in
  Format.printf "  chain-400; sequential semi-naive: %.3fs@." seq_t;
  Format.printf "  %-22s %9s %9s %9s %12s@." "executor (N=4)" "time(s)"
    "speedup" "msgs" "wire-bytes";
  let runs = ref [] in
  let record name t (r : Sim_runtime.result) =
    let tr = r.Sim_runtime.stats.Stats.transport in
    Format.printf "  %-22s %9.3f %9.2f %9d %12d@." name t (seq_t /. t)
      (Stats.total_messages r.Sim_runtime.stats)
      (tr.Stats.bytes_sent + tr.Stats.bytes_received);
    runs := (name, t, r) :: !runs;
    r
  in
  (* Forked rows first: creating a domain poisons Unix.fork for the
     rest of the process, so the domain comparison row must come after
     every process-based run (including the recovery study below). *)
  let nets =
    List.map
      (fun procs ->
        let t, r = time_once (fun () -> net_run ~procs rw ~edb) in
        record (Printf.sprintf "processes x%d" procs) t r)
      [ 1; 2; 4 ]
  in
  (* Recovery: SIGKILL one worker a few rounds in (the scheduled-crash
     path is a genuine self-SIGKILL) and measure the wall-clock price
     of supervision, restart, checkpoint restore and history replay. *)
  let plan =
    Fault.make
      ~crashes:[ { Fault.cr_pid = 1; cr_round = 5; cr_down = 1 } ]
      ~checkpoint_every:4 ()
  in
  let base_t, _ = time_once (fun () -> net_run ~procs:4 rw ~edb) in
  let crash_t, crash_r =
    time_once (fun () ->
        net_run ~config:Run_config.(default |> with_fault plan) ~procs:4 rw
          ~edb)
  in
  let cf = crash_r.Sim_runtime.stats.Stats.faults in
  let ct = crash_r.Sim_runtime.stats.Stats.transport in
  (* Only now is it safe to create domains. *)
  let dom =
    let t, r = time_once (fun () -> Domain_runtime.run rw ~edb) in
    record "domains" t r
  in
  claim "net runtime pools the sequential answer"
    (List.for_all
       (fun (r : Sim_runtime.result) ->
         Relation.equal (Database.get seq_db "anc")
           (Database.get r.Sim_runtime.answers "anc"))
       nets);
  claim "message volume matches the domain runtime (same rewrite)"
    (List.for_all
       (fun (r : Sim_runtime.result) ->
         Stats.total_messages r.Sim_runtime.stats
         = Stats.total_messages dom.Sim_runtime.stats)
       nets);
  Format.printf
    "  recovery: fault-free %.3fs, mid-run SIGKILL %.3fs (+%.0f%%); %d \
     restart(s), %d restore(s), %d tuple(s) replayed@."
    base_t crash_t
    ((crash_t -. base_t) /. base_t *. 100.)
    ct.Stats.worker_restarts cf.Stats.restores cf.Stats.replayed;
  claim "mid-run SIGKILL recovers to the exact answer"
    (Relation.equal (Database.get seq_db "anc")
       (Database.get crash_r.Sim_runtime.answers "anc"));
  claim "the supervisor restarted and restored the killed worker"
    (ct.Stats.worker_restarts >= 1 && cf.Stats.restores >= 1);
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":1,\"bench\":\"NET\",\"workload\":\"chain-400\",\"nprocs\":4,\"sequential_s\":%.4f,\"runs\":["
       seq_t);
  List.iteri
    (fun i (name, t, (r : Sim_runtime.result)) ->
      if i > 0 then Buffer.add_char buf ',';
      let tr = r.Sim_runtime.stats.Stats.transport in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%S,\"time_s\":%.4f,\"messages\":%d,\"bytes_sent\":%d,\"bytes_received\":%d}"
           name t
           (Stats.total_messages r.Sim_runtime.stats)
           tr.Stats.bytes_sent tr.Stats.bytes_received))
    (List.rev !runs);
  Buffer.add_string buf
    (Printf.sprintf
       "],\"recovery\":{\"fault_free_s\":%.4f,\"mid_run_kill_s\":%.4f,\"worker_restarts\":%d,\"restores\":%d,\"replayed\":%d,\"wire_retransmits\":%d}}\n"
       base_t crash_t ct.Stats.worker_restarts cf.Stats.restores
       cf.Stats.replayed ct.Stats.wire_retransmits);
  let oc = open_out "BENCH_NET.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "  wrote BENCH_NET.json@."

(* ------------------------------------------------------------------ *)

(* The section registry, in execution order. `net` forks worker
   processes, and OCaml forbids Unix.fork for the rest of the process
   once any domain (or thread) has been created — so the fork-based
   section must run before every section that touches the domain
   runtime or the daemon. Its own domain comparison row therefore runs
   after the forked rows inside the section. --help prints this same
   list, and test/docs_check.sh keeps README.md in sync with it. *)
let sections =
  [
    ("net", "multi-process runtime - domains vs processes, recovery",
     net_bench);
    ("f1", "Figure 1 - dataflow graph of Example 4", f1);
    ("f2", "Figure 2 - dataflow graph of ancestor; Theorem 3", f2);
    ("f3", "Figure 3 - minimal network of Example 6", f3);
    ("f4", "Figure 4 - minimal network of Example 7", f4);
    ("e1", "Example 1 - no communication, shared base", e1);
    ("e2", "Example 2 - arbitrary fragments, broadcast", e2);
    ("e3", "Example 3 - disjoint fragments, unicast", e3);
    ("t2", "Theorems 2 and 6 - non-redundancy across schemes", t2);
    ("s6", "Section 6 - redundancy/communication spectrum", s6);
    ("e8", "Example 8 - general scheme on nonlinear ancestor", e8);
    ("d8", "Dong's decomposition baseline (intro, point 2)", d8);
    ("p1", "load balance and utilization (deferred by the paper)", p1);
    ("p2", "wall-clock behaviour of the domain runtime", p2);
    ("p3", "parallelism profile - frontier width per round", p3);
    ("a1", "ablation - resend suppression (difference operation)", a1);
    ("a2", "ablation - unicast coverage analysis vs broadcast", a2);
    ("a3", "ablation - guard push-down vs post-join filtering", a3);
    ("a4", "ablation - base fragmentation vs replication", a4);
    ("a5", "ablation - greedy join reordering vs textual order", a5);
    ("r1", "robustness - fault sweep and checkpoint ablation", r1);
    ("r2", "overload - skewed traffic, credit, budgets, the dial", r2);
    ("timing", "Bechamel microbenchmarks", timing);
    ("obs", "observability - metrics cross-check, PR4 baseline", obs);
    ("perf", "hot-path storage engine - wall-clock, PR5 baseline", perf);
    ("perf2",
     "hot-path round 2 - columnar slabs, batched mailboxes, PR10 baseline",
     perf2);
    ("plan", "static planner - auto-picked vs default scheme", plan_bench);
    ("incr", "incremental maintenance vs from-scratch, INCR baseline",
     incr_bench);
    ("serve", "datalogd load sweep - qps, tail latency, BUSY/PARTIAL",
     fun () -> Loadgen.run ~claim ());
  ]

let () =
  if want_help then begin
    Format.printf
      "usage: dune exec bench/main.exe -- [SECTION...] [FLAGS]@.@.sections:@.";
    List.iter
      (fun (id, title, _) -> Format.printf "  %-7s %s@." id title)
      sections;
    Format.printf
      "@.flags:@.  --help                    this listing@.  \
       --check-regression FILE   re-measure the perf workloads; exit \
       nonzero on a slowdown beyond the baseline's threshold@.  \
       --slowdown F              multiply measured times by F (tests \
       the gate)@.  --out FILE                where `perf` writes its \
       baseline (default BENCH_PR5.json; `perf2` always writes \
       BENCH_PR10.json)@.";
    exit 0
  end

let () =
  match regression_baseline with
  | Some file -> run_regression file
  | None -> ()

let () =
  List.iter (fun (id, title, f) -> section id title f) sections;
  Format.printf "@.%s@."
    (if !failures = 0 then "all claims PASS"
     else Printf.sprintf "%d claim(s) FAILED" !failures);
  exit (if !failures = 0 then 0 else 1)
