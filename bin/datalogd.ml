(* datalogd — a resident query daemon for the parallel Datalog
   framework, plus its command-line client.

   Server mode (default): bind a Unix or loopback TCP socket, keep
   programs and EDBs resident, and serve concurrent LOAD / FACTS /
   UPDATE / RETRACT / QUERY / STATS sessions under admission control,
   per-request budgets and graceful degradation (see lib/serve).
   UPDATE/RETRACT batches feed a resident incremental-maintenance
   session per dataset; QUERY live=true reads the maintained model.
   SIGTERM / SIGINT drain: in-flight queries finish, new work is
   rejected with BUSY, metrics are flushed, and the process exits 0.

   Client mode (--connect): a thin protocol pipe — request lines are
   read from stdin (LOAD/FACTS/UPDATE/RETRACT payloads passed through
   up to their "." terminator), every reply line is printed to stdout.
   With --retry, QUERY lines are resent on BUSY/RETRY with jittered
   exponential backoff, which is safe because a QUERY is idempotent
   under its id.

   Exit codes (client mode), matching datalogp par conventions:
     0  all requests answered OK / RESULT
     1  protocol or connection error (including ERR replies)
     2  usage error
     3  BUSY outcome (admission rejected, retries exhausted)
     4  PARTIAL outcome (budget breached, partial statistics returned) *)

open Cmdliner

let read_file path =
  match open_in_bin path with
  | exception Sys_error e ->
    Format.eprintf "datalogd: %s@." e;
    exit 2
  | ic ->
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 65536 in
    let rec go () =
      let n = input ic chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      end
    in
    go ();
    close_in ic;
    Buffer.contents buf

(* An address argument: all-digits means loopback TCP, anything else a
   Unix socket path. *)
let addr_of_string s =
  if s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s then
    Serve.Server.Tcp (int_of_string s)
  else Serve.Server.Unix_sock s

(* ---------------------------------------------------------------- *)
(* Client mode                                                       *)
(* ---------------------------------------------------------------- *)

(* Deterministic decorrelated jitter: a seeded LCG over [0, base). *)
let make_jitter ~seed ~base_ms =
  if seed = 0 then fun _ -> 0
  else begin
    let state = ref (seed land 0x3FFFFFFF) in
    fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod max 1 base_ms
  end

type outcome = { mutable err : bool; mutable busy : bool; mutable partial : bool }

let note_reply outcome (head : Serve.Protocol.head) =
  match head with
  | Serve.Protocol.Err _ -> outcome.err <- true
  | Serve.Protocol.Busy _ -> outcome.busy <- true
  | Serve.Protocol.Retry _ -> outcome.busy <- true
  | Serve.Protocol.Result_head { partial = true; _ } ->
    outcome.partial <- true
  | _ -> ()

let print_reply (reply : Serve.Client.reply) =
  List.iter print_endline reply.Serve.Client.raw

(* Read payload lines up to the "." terminator (not included: the
   client library re-appends it). *)
let read_payload_stdin () =
  let buf = Buffer.create 256 in
  let rec go () =
    match input_line stdin with
    | "." -> Buffer.contents buf
    | line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      go ()
    | exception End_of_file -> Buffer.contents buf
  in
  go ()

let is_verb line verb =
  let n = String.length verb in
  String.length line >= n
  && String.sub line 0 n = verb
  && (String.length line = n || line.[n] = ' ')

let client_mode ~target ~tenant ~retry ~retry_max ~retry_base_ms ~jitter_seed =
  let addr = addr_of_string target in
  match Serve.Client.connect addr with
  | Serve.Client.Conn_error e ->
    Format.eprintf "datalogd: %s@." e;
    exit 1
  | Serve.Client.Conn_busy { reason; retry_after_ms } ->
    print_endline
      (Serve.Protocol.busy ~reason ~retry_after_ms ());
    exit 3
  | Serve.Client.Conn c ->
    print_endline Serve.Protocol.greeting;
    let outcome = { err = false; busy = false; partial = false } in
    let jitter = make_jitter ~seed:jitter_seed ~base_ms:retry_base_ms in
    let fail e =
      Format.eprintf "datalogd: %s@." e;
      exit 1
    in
    let handle_reply (reply : Serve.Client.reply) =
      note_reply outcome reply.Serve.Client.head;
      print_reply reply;
      match reply.Serve.Client.head with
      | Serve.Protocol.Bye _ -> raise Exit
      | _ -> ()
    in
    (match tenant with
     | None -> ()
     | Some t -> (
       match
         Serve.Client.request c (Printf.sprintf "HELLO tenant=%s" t)
       with
       | Ok reply -> handle_reply reply
       | Error e -> fail e));
    (try
       let continue = ref true in
       while !continue do
         match input_line stdin with
         | exception End_of_file -> continue := false
         | line when String.trim line = "" -> ()
         | line ->
           let payload =
             if
               is_verb line "LOAD" || is_verb line "FACTS"
               || is_verb line "UPDATE" || is_verb line "RETRACT"
             then Some (read_payload_stdin ())
             else None
           in
           if retry && is_verb line "QUERY" then begin
             match
               Serve.Client.request_retry ~max_attempts:retry_max
                 ~base_ms:retry_base_ms ~jitter c ?payload line
             with
             | Error e -> fail e
             | Ok out ->
               (* Intermediate BUSY/RETRY replies were absorbed by the
                  backoff loop; only the final reply decides. *)
               handle_reply out.Serve.Client.reply
           end
           else begin
             match Serve.Client.request c ?payload line with
             | Error e -> fail e
             | Ok reply -> handle_reply reply
           end
       done
     with Exit -> ());
    Serve.Client.close c;
    if outcome.err then exit 1
    else if outcome.busy then exit 3
    else if outcome.partial then exit 4
    else exit 0

(* ---------------------------------------------------------------- *)
(* Server mode                                                       *)
(* ---------------------------------------------------------------- *)

let parse_name_file ~flag spec =
  match String.index_opt spec '=' with
  | Some i when i > 0 && i < String.length spec - 1 ->
    (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
  | _ ->
    Format.eprintf "datalogd: %s expects NAME=FILE, got %s@." flag spec;
    exit 2

let server_mode ~socket ~port ~nprocs ~runtime ~seed ~max_sessions
    ~max_inflight ~queue_depth ~tenant_inflight ~default_deadline_ms
    ~deadline_cap_ms ~max_store_cap ~cache_size ~retry_after_ms ~drain_grace
    ~hold_eval_ms ~drop ~fault_seed ~loads ~facts ~metrics_out =
  let addr =
    match (socket, port) with
    | Some path, None -> Serve.Server.Unix_sock path
    | None, Some p -> Serve.Server.Tcp p
    | Some _, Some _ ->
      Format.eprintf "datalogd: --socket and --port are exclusive@.";
      exit 2
    | None, None ->
      Format.eprintf
        "datalogd: server mode needs --socket PATH or --port N (or use \
         --connect)@.";
      exit 2
  in
  let fault =
    if drop = 0.0 then Pardatalog.Fault.none
    else
      try Pardatalog.Fault.make ~seed:fault_seed ~drop ()
      with Invalid_argument e ->
        Format.eprintf "datalogd: %s@." e;
        exit 2
  in
  let cfg =
    {
      (Serve.Server.default_config addr) with
      nprocs;
      runtime;
      seed;
      max_sessions;
      max_inflight;
      queue_depth;
      tenant_inflight;
      default_deadline_ms;
      deadline_cap_ms;
      max_store_cap;
      cache_size;
      retry_after_ms;
      drain_grace;
      hold_eval_ms;
      fault;
    }
  in
  (match Serve.Server.validate_config cfg with
   | Ok () -> ()
   | Error e ->
     Format.eprintf "datalogd: %s@." e;
     exit 2);
  let metrics = Obs.Metrics.create () in
  (* Block the shutdown signals before any thread exists, so every
     thread inherits the mask and delivery goes through the dedicated
     [Thread.wait_signal] thread below. A [Sys.Signal_handle] would
     deadlock here: with the main thread parked in [Thread.join] and
     the others in blocking syscalls, no thread ever reaches an OCaml
     safepoint to run the handler. *)
  ignore (Thread.sigmask Unix.SIG_BLOCK [ Sys.sigterm; Sys.sigint ]);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Serve.Server.start ~metrics cfg with
  | Error e ->
    Format.eprintf "datalogd: %s@." e;
    exit 2
  | Ok t ->
    List.iter
      (fun spec ->
        let name, file = parse_name_file ~flag:"--load" spec in
        match Serve.Server.load_program t name (read_file file) with
        | Ok rules ->
          Format.eprintf "datalogd: loaded %s (%d rules)@." name rules
        | Error e ->
          Format.eprintf "datalogd: --load %s: %s@." name e;
          exit 2)
      loads;
    List.iter
      (fun spec ->
        let name, file = parse_name_file ~flag:"--facts" spec in
        match Serve.Server.add_facts t name (read_file file) with
        | Ok (added, total) ->
          Format.eprintf "datalogd: %s += %d facts (%d total)@." name added
            total
        | Error e ->
          Format.eprintf "datalogd: --facts %s: %s@." name e;
          exit 2)
      facts;
    let (_ : Thread.t) =
      Thread.create
        (fun () ->
          let (_ : int) = Thread.wait_signal [ Sys.sigterm; Sys.sigint ] in
          Serve.Server.request_stop t)
        ()
    in
    Format.eprintf "datalogd: listening on %a@." Serve.Server.pp_addr addr;
    let r = Serve.Server.await t in
    (match metrics_out with
     | Some path -> Obs.Metrics.write metrics path
     | None -> ());
    Format.eprintf
      "datalogd: drained ok=%d partial=%d busy=%d sessions=%d forced=%d@."
      r.Serve.Server.queries_ok r.Serve.Server.queries_partial
      r.Serve.Server.replies_busy r.Serve.Server.drained_sessions
      r.Serve.Server.forced_sessions;
    exit 0

(* ---------------------------------------------------------------- *)
(* Command line                                                      *)
(* ---------------------------------------------------------------- *)

let cmd =
  let doc = "resident parallel Datalog query daemon and client" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Server mode (default) binds $(b,--socket) PATH or loopback \
         $(b,--port) N and serves the versioned line protocol \
         documented in lib/serve/protocol.mli: HELLO, LOAD, FACTS, \
         UPDATE, RETRACT, QUERY, STATS, PING, QUIT. Programs and their \
         extensional databases stay resident between requests; UPDATE \
         and RETRACT stream signed fact batches into a resident \
         incremental-maintenance session, and QUERY live=true reads \
         the maintained model. SIGTERM drains: in-flight queries \
         finish, new work gets BUSY, metrics flush, exit 0.";
      `P
        "Client mode ($(b,--connect) ADDR) reads request lines from \
         stdin and prints every reply line; LOAD/FACTS/UPDATE/RETRACT \
         payloads are passed through up to their terminating '.' \
         line. ADDR is a socket path, or a port number for TCP.";
      `S Manpage.s_exit_status;
      `P "Client mode: 0 success; 1 protocol/connection error or ERR \
          reply; 2 usage; 3 BUSY outcome; 4 PARTIAL outcome.";
    ]
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Run as a client of the daemon at $(docv) (socket path, or \
             port number for TCP); read requests from stdin.")
  in
  let tenant =
    Arg.(
      value
      & opt (some string) None
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:"Client mode: send HELLO tenant=$(docv) first.")
  in
  let retry =
    Arg.(
      value & flag
      & info [ "retry" ]
          ~doc:
            "Client mode: resend QUERY lines on BUSY/RETRY with \
             jittered exponential backoff (safe: a QUERY is idempotent \
             under its id).")
  in
  let retry_max =
    Arg.(
      value & opt int 8
      & info [ "retry-max" ] ~docv:"N"
          ~doc:"Client mode: backoff attempts per QUERY.")
  in
  let retry_base_ms =
    Arg.(
      value & opt int 5
      & info [ "retry-base-ms" ] ~docv:"MS"
          ~doc:"Client mode: base backoff delay; attempt k waits about \
                $(docv)*2^k ms, capped at 500.")
  in
  let jitter_seed =
    Arg.(
      value & opt int 0
      & info [ "jitter-seed" ] ~docv:"SEED"
          ~doc:"Client mode: seed of the deterministic backoff jitter \
                (0 = no jitter).")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix socket.")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"N" ~doc:"Listen on loopback TCP port $(docv).")
  in
  let nprocs =
    Arg.(
      value & opt int 4
      & info [ "j"; "nprocs" ] ~docv:"N"
          ~doc:"Default processor count per query.")
  in
  let runtime =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("domain", `Domain) ]) `Domain
      & info [ "runtime" ] ~docv:"RT"
          ~doc:"Default runtime: $(b,domain) (default) or $(b,sim).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Seed of the hash-function family.")
  in
  let max_sessions =
    Arg.(
      value & opt int 64
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Concurrent connection cap; excess connects get BUSY.")
  in
  let max_inflight =
    Arg.(
      value & opt int 4
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Queries evaluating at once across all sessions.")
  in
  let queue_depth =
    Arg.(
      value & opt int 8
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission wait-queue bound; a query arriving with the \
             queue full gets BUSY immediately (0 = never wait).")
  in
  let tenant_inflight =
    Arg.(
      value & opt int 2
      & info [ "tenant-inflight" ] ~docv:"N"
          ~doc:"Per-tenant in-flight query cap.")
  in
  let default_deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "default-deadline-ms" ] ~docv:"MS"
          ~doc:"Deadline applied when a QUERY sets none.")
  in
  let deadline_cap_ms =
    Arg.(
      value
      & opt (some int) (Some 60_000)
      & info [ "deadline-cap-ms" ] ~docv:"MS"
          ~doc:"Upper clamp on requested deadlines (default 60000).")
  in
  let max_store_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-store-cap" ] ~docv:"ROWS"
          ~doc:"Upper clamp on requested per-processor store budgets.")
  in
  let cache_size =
    Arg.(
      value & opt int 256
      & info [ "idempotency-cache" ] ~docv:"N"
          ~doc:
            "Completed replies cached per (tenant, id) for \
             byte-identical replay; 0 disables.")
  in
  let retry_after_ms =
    Arg.(
      value & opt int 25
      & info [ "retry-after-ms" ] ~docv:"MS"
          ~doc:"Hint attached to BUSY and RETRY replies.")
  in
  let drain_grace =
    Arg.(
      value & opt float 5.0
      & info [ "drain-grace" ] ~docv:"SECS"
          ~doc:
            "Seconds to wait for in-flight work on SIGTERM before \
             force-closing sessions.")
  in
  let hold_eval_ms =
    Arg.(
      value & opt int 0
      & info [ "hold-eval-ms" ] ~docv:"MS"
          ~doc:
            "Testing: add $(docv) of artificial service time to every \
             evaluation, to make saturation reproducible.")
  in
  let drop =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ] ~docv:"P"
          ~doc:
            "Inject a fault plan into every query: per-transmission \
             message drop probability, in [0,1).")
  in
  let fault_seed =
    Arg.(
      value & opt int 0
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"Seed of the deterministic fault plan.")
  in
  let loads =
    Arg.(
      value & opt_all string []
      & info [ "load" ] ~docv:"NAME=FILE"
          ~doc:"Preload a program (repeatable).")
  in
  let facts =
    Arg.(
      value & opt_all string []
      & info [ "facts" ] ~docv:"NAME=FILE"
          ~doc:"Preload facts into a loaded program (repeatable).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Flush the metrics registry to $(docv) as JSON on drain.")
  in
  let action connect tenant retry retry_max retry_base_ms jitter_seed socket
      port nprocs runtime seed max_sessions max_inflight queue_depth
      tenant_inflight default_deadline_ms deadline_cap_ms max_store_cap
      cache_size retry_after_ms drain_grace hold_eval_ms drop fault_seed
      loads facts metrics_out =
    match connect with
    | Some target ->
      client_mode ~target ~tenant ~retry ~retry_max ~retry_base_ms
        ~jitter_seed
    | None ->
      server_mode ~socket ~port ~nprocs ~runtime ~seed ~max_sessions
        ~max_inflight ~queue_depth ~tenant_inflight ~default_deadline_ms
        ~deadline_cap_ms ~max_store_cap ~cache_size ~retry_after_ms
        ~drain_grace ~hold_eval_ms ~drop ~fault_seed ~loads ~facts
        ~metrics_out
  in
  Cmd.v
    (Cmd.info "datalogd" ~version:"1.0.0" ~doc ~man)
    Term.(
      const action $ connect $ tenant $ retry $ retry_max $ retry_base_ms
      $ jitter_seed $ socket $ port $ nprocs $ runtime $ seed $ max_sessions
      $ max_inflight $ queue_depth $ tenant_inflight $ default_deadline_ms
      $ deadline_cap_ms $ max_store_cap $ cache_size $ retry_after_ms
      $ drain_grace $ hold_eval_ms $ drop $ fault_seed $ loads $ facts
      $ metrics_out)

let () = exit (Cmd.eval cmd)
