(* datalogp — command-line front end for the parallel Datalog framework.

   Subcommands:
     run       sequential evaluation (semi-naive, naive or stratified)
     query     evaluate and print the tuples matching a pattern
     par       parallel evaluation under a chosen scheme and runtime
     dong      the decomposition baseline of Dong [8]
     rewrite   print the per-processor programs a scheme generates
     dataflow  print a sirup's dataflow graph and Theorem-3 choice
     network   derive the minimal network graph (Section 5)
     check     static diagnostics, incl. Theorem 2/3 scheme verification
     gen       emit a generated workload as Datalog facts *)

open Datalog
open Pardatalog
open Cmdliner

(* ---------------------------------------------------------------- *)
(* Shared loading helpers                                            *)
(* ---------------------------------------------------------------- *)

(* Stream the file so that pipes and process substitutions work too. *)
let read_file path =
  let ic = open_in_bin path in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let n = input ic chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    end
  in
  go ();
  close_in ic;
  Buffer.contents buf

let load_program path =
  match Parser.program (read_file path) with
  | Ok p -> p
  | Error e ->
    Format.eprintf "%s: %a@." path Parser.pp_error e;
    exit 2

let load_edb = function
  | None -> Database.create ()
  | Some path ->
    (match Parser.tuples (read_file path) with
     | Ok facts ->
       let db = Database.create () in
       List.iter (fun (pred, t) -> ignore (Database.add_fact db pred t)) facts;
       db
     | Error e ->
       Format.eprintf "%s: %a@." path Parser.pp_error e;
       exit 2)

let print_answers db preds =
  List.iter
    (fun pred ->
      match Database.find db pred with
      | Some rel ->
        Format.printf "%s/%d (%d tuples):@." pred (Relation.arity rel)
          (Relation.cardinal rel);
        List.iter
          (fun t -> Format.printf "  %s%a@." pred Tuple.pp t)
          (Relation.sorted_elements rel)
      | None -> Format.printf "%s: (empty)@." pred)
    preds

(* ---------------------------------------------------------------- *)
(* Common options                                                    *)
(* ---------------------------------------------------------------- *)

let program_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PROGRAM" ~doc:"Datalog program file.")

let edb_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "edb" ] ~docv:"FILE"
        ~doc:"Extensional database: a file of ground facts.")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ] ~doc:"Do not print the answer tuples.")

let nprocs_arg =
  Arg.(
    value & opt int 4
    & info [ "n"; "nprocs" ] ~docv:"N" ~doc:"Number of processors.")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"SEED" ~doc:"Seed of the hash-function family.")

(* ---------------------------------------------------------------- *)
(* run                                                               *)
(* ---------------------------------------------------------------- *)

let run_cmd =
  let doc = "Evaluate a program sequentially (semi-naive by default)." in
  let engine_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("seminaive", `Seminaive); ("naive", `Naive);
               ("stratified", `Stratified) ])
          `Seminaive
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"$(b,seminaive) (default), $(b,naive) or $(b,stratified) \
                (SCC-by-SCC).")
  in
  let action program edb_file engine quiet =
    let program = load_program program in
    let edb = load_edb edb_file in
    (match Program.check program with
     | Ok () -> ()
     | Error msg ->
       Format.eprintf "invalid program: %s@." msg;
       exit 2);
    let derived = Program.derived_predicates program in
    match engine with
    | `Naive ->
      let db = Naive.evaluate program edb in
      if not quiet then print_answers db derived
    | `Seminaive ->
      let db, stats = Seminaive.evaluate program edb in
      if not quiet then print_answers db derived;
      Format.printf "%a@." Seminaive.pp_stats stats
    | `Stratified ->
      let db, stats = Stratified.evaluate program edb in
      if not quiet then print_answers db derived;
      Format.printf "%a@." Seminaive.pp_stats stats
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const action $ program_arg $ edb_arg $ engine_arg $ quiet_arg)

(* ---------------------------------------------------------------- *)
(* query                                                             *)
(* ---------------------------------------------------------------- *)

let query_cmd =
  let doc = "Evaluate a program and print the tuples matching a pattern." in
  let pattern_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"PATTERN"
          ~doc:"A query atom, e.g. 'anc(1,X)': variables match anything, \
                repeated variables must match equal constants.")
  in
  let action program edb_file pattern =
    let program = load_program program in
    let edb = load_edb edb_file in
    let pattern =
      match Parser.atom pattern with
      | Ok a -> a
      | Error e ->
        Format.eprintf "bad pattern: %a@." Parser.pp_error e;
        exit 2
    in
    let db, _ = Seminaive.evaluate program edb in
    match Database.find db pattern.Atom.pred with
    | None ->
      Format.eprintf "unknown predicate %s@." pattern.Atom.pred;
      exit 2
    | Some rel ->
      if Relation.arity rel <> Atom.arity pattern then begin
        Format.eprintf "%s has arity %d@." pattern.Atom.pred
          (Relation.arity rel);
        exit 2
      end;
      let matches tuple =
        let binding = Hashtbl.create 4 in
        let ok = ref true in
        Array.iteri
          (fun i term ->
            match term with
            | Datalog.Term.Const c ->
              if not (Const.equal c (Tuple.get tuple i)) then ok := false
            | Datalog.Term.Var v ->
              (match Hashtbl.find_opt binding v with
               | Some c ->
                 if not (Const.equal c (Tuple.get tuple i)) then ok := false
               | None -> Hashtbl.add binding v (Tuple.get tuple i)))
          pattern.Atom.args;
        !ok
      in
      let count = ref 0 in
      List.iter
        (fun t ->
          if matches t then begin
            incr count;
            Format.printf "%s%a@." pattern.Atom.pred Tuple.pp t
          end)
        (Relation.sorted_elements rel);
      Format.printf "%d tuple(s)@." !count
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const action $ program_arg $ edb_arg $ pattern_arg)

(* ---------------------------------------------------------------- *)
(* Scheme selection (shared by par and rewrite)                      *)
(* ---------------------------------------------------------------- *)

let scheme_conv =
  Arg.enum
    [
      ("q", `Q); ("nocomm", `Nocomm); ("example2", `Example2);
      ("example3", `Example3); ("wolfson", `Wolfson);
      ("tradeoff", `Tradeoff); ("general", `General);
    ]

let scheme_arg =
  Arg.(
    value & opt scheme_conv `General
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:
          "Parallelization scheme: $(b,q) (Section 3 with --ve/--vr), \
           $(b,nocomm) (Theorem 3), $(b,example2), $(b,example3), \
           $(b,wolfson), $(b,tradeoff) (with --alpha), or $(b,general) \
           (Section 7; default).")

let vars_conv = Arg.list Arg.string

let ve_arg =
  Arg.(
    value & opt vars_conv []
    & info [ "ve" ] ~docv:"VARS"
        ~doc:"Discriminating sequence of the exit rule (scheme q).")

let vr_arg =
  Arg.(
    value & opt vars_conv []
    & info [ "vr" ] ~docv:"VARS"
        ~doc:"Discriminating sequence of the recursive rule (scheme q).")

let alpha_arg =
  Arg.(
    value & opt float 0.5
    & info [ "alpha" ] ~docv:"A"
        ~doc:"Locality of the tradeoff scheme: probability of keeping a \
              tuple at its producer (0 = non-redundant, 1 = Wolfson).")

let check_alpha alpha =
  if not (alpha >= 0.0 && alpha <= 1.0) then begin
    Format.eprintf "--alpha must be in [0,1], got %g@." alpha;
    exit 2
  end

let build_scheme scheme ~nprocs ~seed ~ve ~vr ~alpha program edb =
  match scheme with
  | `Q ->
    if ve = [] || vr = [] then
      Error "scheme q requires --ve and --vr"
    else Strategy.hash_q ~seed ~nprocs ~ve ~vr program
  | `Nocomm -> Strategy.no_communication ~seed ~nprocs program
  | `Example2 ->
    let partition =
      let rng = Workload.Rng.create ~seed in
      match Strategy.tc_shape program with
      | Error e -> (fun _ -> ignore e; 0)
      | Ok s ->
        let base_pred =
          (List.hd s.Analysis.base_atoms).Atom.pred
        in
        Workload.Edb.partition_random rng ~nprocs edb ~pred:base_pred
    in
    Strategy.example2 ~nprocs ~partition program
  | `Example3 -> Strategy.example3 ~seed ~nprocs program
  | `Wolfson -> Strategy.wolfson_redundant ~seed ~nprocs program
  | `Tradeoff -> Strategy.tradeoff ~seed ~nprocs ~alpha program
  | `General -> Strategy.general ~seed ~nprocs program

(* ---------------------------------------------------------------- *)
(* par                                                               *)
(* ---------------------------------------------------------------- *)

let par_cmd =
  let doc = "Evaluate a program in parallel and report statistics." in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Log each simulated round to stderr.")
  in
  let runtime_arg =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("domain", `Domain); ("net", `Net) ]) `Sim
      & info [ "runtime" ] ~docv:"RT"
          ~doc:
            "$(b,sim) = deterministic simulated rounds (default); \
             $(b,domain) = OCaml domains; $(b,net) = one worker OS \
             process per --procs slot, coordinated over sockets.")
  in
  let procs_arg =
    Arg.(
      value & opt int 4
      & info [ "procs" ] ~docv:"P"
          ~doc:
            "With --runtime net: number of worker processes (clamped \
             to the processor count; default 4).")
  in
  let net_transport_arg =
    Arg.(
      value
      & opt (enum [ ("unix", `Unix); ("tcp", `Tcp) ]) `Unix
      & info [ "net-transport" ] ~docv:"T"
          ~doc:
            "With --runtime net: $(b,unix) sockets (default) or \
             loopback $(b,tcp).")
  in
  let net_partition_arg =
    Arg.(
      value & opt float 0.0
      & info [ "net-partition" ] ~docv:"PR"
          ~doc:
            "With --runtime net: probability in [0,1) that a channel's \
             current frame window is cut by the fault shim.")
  in
  let net_hb_arg =
    Arg.(
      value & opt int 25
      & info [ "net-hb-ms" ] ~docv:"MS"
          ~doc:"With --runtime net: heartbeat period in milliseconds.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "With --runtime domain: serve the N processors with D \
             domains (default: one per processor).")
  in
  let detector_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("safra", Run_config.Safra);
               ("dijkstra-scholten", Run_config.Dijkstra_scholten) ])
          Run_config.Safra
      & info [ "detector" ] ~docv:"ALG"
          ~doc:
            "Termination detection for --runtime domain: $(b,safra) \
             (default) or $(b,dijkstra-scholten).")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Also run sequentially and check Theorems 1/2-style \
                properties.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON file covering every \
             (processor, round, phase) of the run; open it in Perfetto \
             or chrome://tracing.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a versioned JSON metrics snapshot (counters, gauges, \
             histograms) of the run.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the run statistics as versioned JSON (schema 1) \
             instead of the table.")
  in
  let plan_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "plan" ] ~docv:"FILE"
          ~doc:
            "Run under a plan certificate (from $(b,check --suggest \
             --json)). The certificate is re-verified against the \
             program: a stale or invalid one is rejected with exit \
             code 5 (E201-E203). Overrides --scheme and -n.")
  in
  let auto_arg =
    Arg.(
      value & flag
      & info [ "auto-scheme" ]
          ~doc:
            "Synthesize the scheme with the static planner (profiling \
             the --edb facts) instead of taking --scheme.")
  in
  let fault_term =
    let fault_seed_arg =
      Arg.(
        value & opt int 0
        & info [ "fault-seed" ] ~docv:"SEED"
            ~doc:"Seed of the deterministic fault plan.")
    in
    let drop_arg =
      Arg.(
        value & opt float 0.0
        & info [ "drop" ] ~docv:"P"
            ~doc:"Per-transmission message drop probability, in [0,1).")
    in
    let dup_arg =
      Arg.(
        value & opt float 0.0
        & info [ "dup" ] ~docv:"P"
            ~doc:"Per-transmission message duplication probability.")
    in
    let reorder_arg =
      Arg.(
        value & opt float 0.0
        & info [ "reorder" ] ~docv:"P"
            ~doc:"Per-message reordering probability.")
    in
    let delay_arg =
      Arg.(
        value & opt float 0.0
        & info [ "delay" ] ~docv:"P"
            ~doc:"Per-message added-latency probability (see --max-delay).")
    in
    let max_delay_arg =
      Arg.(
        value & opt int 1
        & info [ "max-delay" ] ~docv:"R"
            ~doc:"Largest added latency, in rounds.")
    in
    let crash_arg =
      Arg.(
        value & opt string ""
        & info [ "crash" ] ~docv:"SPEC"
            ~doc:
              "Crash schedule: comma-separated $(b,PID@ROUND[+DOWN]) \
               entries, e.g. $(b,1@3+2) crashes processor 1 at round 3 \
               for 2 rounds. A crash that would leave no live processor \
               is skipped.")
    in
    let checkpoint_arg =
      Arg.(
        value
        & opt (some int) None
        & info [ "checkpoint" ] ~docv:"K"
            ~doc:
              "Checkpoint every K rounds, so crash recovery resumes from \
               the snapshot instead of re-deriving from the base \
               fragment.")
    in
    let build fault_seed drop dup reorder delay max_delay crash checkpoint =
      let crashes =
        match Fault.parse_crashes crash with
        | Ok cs -> cs
        | Error msg ->
          Format.eprintf "bad --crash: %s@." msg;
          exit 2
      in
      try
        Fault.make ~seed:fault_seed ~drop ~dup ~reorder ~delay ~max_delay
          ~crashes ?checkpoint_every:checkpoint ()
      with Invalid_argument msg ->
        Format.eprintf "%s@." msg;
        exit 2
    in
    Term.(
      const build $ fault_seed_arg $ drop_arg $ dup_arg $ reorder_arg
      $ delay_arg $ max_delay_arg $ crash_arg $ checkpoint_arg)
  in
  let overload_term =
    let capacity_arg =
      Arg.(
        value
        & opt (some int) None
        & info [ "capacity" ] ~docv:"K"
            ~doc:
              "Credit-based backpressure: at most K tuples in flight per \
               channel; over-budget tuples wait at the sender.")
    in
    let deadline_arg =
      Arg.(
        value
        & opt (some float) None
        & info [ "deadline" ] ~docv:"SEC"
            ~doc:
              "Wall-clock budget in seconds; on expiry the run aborts \
               with partial statistics.")
    in
    let max_store_arg =
      Arg.(
        value
        & opt (some int) None
        & info [ "max-store" ] ~docv:"ROWS"
            ~doc:"Per-processor tuple-store row budget.")
    in
    let max_outbox_arg =
      Arg.(
        value
        & opt (some int) None
        & info [ "max-outbox" ] ~docv:"ROWS"
            ~doc:"Per-processor outbox row budget.")
    in
    let max_rounds_arg =
      Arg.(
        value
        & opt (some int) None
        & info [ "max-rounds" ] ~docv:"N"
            ~doc:
              "Round budget of --runtime sim; on exhaustion the run \
               aborts with partial statistics.")
    in
    let adaptive_arg =
      Arg.(
        value & flag
        & info [ "adaptive" ]
            ~doc:
              "Adaptive degradation: run the tradeoff scheme with a \
               per-processor alpha moved by backlog feedback \
               (--high-water), resting at --alpha. Overrides --scheme.")
    in
    let high_water_arg =
      Arg.(
        value & opt int 64
        & info [ "high-water" ] ~docv:"N"
            ~doc:
              "Backlog (per-channel tuples outstanding) past which an \
               --adaptive processor raises its alpha.")
    in
    let build capacity deadline max_store max_outbox max_rounds adaptive
        high_water =
      (match capacity with
      | Some k when k < 1 ->
        Format.eprintf "--capacity must be at least 1, got %d@." k;
        exit 2
      | _ -> ());
      (match max_rounds with
      | Some n when n < 1 ->
        Format.eprintf "--max-rounds must be at least 1, got %d@." n;
        exit 2
      | _ -> ());
      let limits =
        {
          Overload.deadline;
          max_store_rows = max_store;
          max_outbox_rows = max_outbox;
        }
      in
      (try Overload.validate limits
       with Invalid_argument msg ->
         Format.eprintf "%s@." msg;
         exit 2);
      if high_water < 1 then begin
        Format.eprintf "--high-water must be at least 1, got %d@." high_water;
        exit 2
      end;
      (capacity, limits, max_rounds, adaptive, high_water)
    in
    Term.(
      const build $ capacity_arg $ deadline_arg $ max_store_arg
      $ max_outbox_arg $ max_rounds_arg $ adaptive_arg $ high_water_arg)
  in
  let action program edb_file scheme nprocs seed ve vr alpha plan_file auto
      runtime procs net_transport net_partition net_hb domains detector
      verify fault overload trace_file metrics_file json quiet verbose =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.Src.set_level Sim_runtime.log_src (Some Logs.Debug)
    end;
    check_alpha alpha;
    let capacity, limits, max_rounds, adaptive, high_water = overload in
    if runtime = `Net && adaptive then begin
      Format.eprintf
        "--adaptive is coordinator-stateful; not supported with --runtime \
         net@.";
      exit 2
    end;
    (* The net runtime re-parses the program in every worker, so it
       needs the source text, not just the parsed value. *)
    let program_path = program in
    let program_text = read_file program_path in
    let program =
      match Parser.program program_text with
      | Ok p -> p
      | Error e ->
        Format.eprintf "%s: %a@." program_path Parser.pp_error e;
        exit 2
    in
    let edb = load_edb edb_file in
    let plan_reject (r : Plan.reject) =
      Format.eprintf "%a@." Plan.pp_reject r;
      exit 5
    in
    if (plan_file <> None || auto) && adaptive then begin
      Format.eprintf
        "--adaptive picks its own scheme; drop --plan/--auto-scheme@.";
      exit 2
    end;
    let plan =
      match (plan_file, auto) with
      | Some _, true ->
        Format.eprintf "--plan and --auto-scheme are mutually exclusive@.";
        exit 2
      | Some path, false -> (
        match Plan.of_json (read_file path) with
        | Error r -> plan_reject r
        | Ok plan -> (
          match Plan.verify plan program with
          | Error r -> plan_reject r
          | Ok () -> Some plan))
      | None, true -> (
        let profile = Check.Costmodel.profile_of_db edb in
        let outcome =
          Check.Planner.suggest ~profile ~nprocs ~seed program
        in
        match outcome.Check.Planner.plan with
        | None ->
          Format.eprintf
            "no scheme verifies for this program; run check for details@.";
          exit 2
        | Some plan -> Some plan)
      | None, false -> None
    in
    (* A certificate fixes the processor count it was issued for. *)
    let nprocs =
      match plan with Some p -> p.Plan.nprocs | None -> nprocs
    in
    if runtime = `Net && plan = None && scheme = `Example2 then begin
      Format.eprintf
        "scheme example2 partitions the EDB with coordinator-local state; \
         not supported with --runtime net@.";
      exit 2
    end;
    let dial =
      if adaptive then
        Some (Overload.dial ~alpha ~high_water ~nprocs ())
      else None
    in
    let scheme_result =
      match (plan, dial) with
      | Some p, _ -> (
        match Plan.to_rewrite p program with
        | Ok rw -> Ok rw
        | Error r -> plan_reject r)
      | None, Some dial ->
        Strategy.adaptive_tradeoff ~seed ~nprocs ~dial program
      | None, None ->
        build_scheme scheme ~nprocs ~seed ~ve ~vr ~alpha program edb
    in
    match scheme_result with
    | Error msg ->
      Format.eprintf "cannot build scheme: %s@." msg;
      exit 2
    | Ok rw ->
      let trace =
        if trace_file = None then Obs.Trace.none else Obs.Trace.create ()
      in
      let metrics =
        if metrics_file = None then Obs.Metrics.none
        else Obs.Metrics.create ()
      in
      let config =
        Run_config.(
          default |> with_fault fault |> with_capacity capacity
          |> with_limits limits |> with_dial dial |> with_detector detector
          |> with_domains domains |> with_trace trace
          |> with_metrics metrics
          |> with_max_rounds
               (Option.value max_rounds ~default:default.max_rounds)
          |> with_plan plan)
      in
      (* The sinks are flushed on every outcome — an aborted run's trace
         is exactly the one worth looking at. *)
      let write_sinks () =
        Option.iter (Obs.Trace.write trace) trace_file;
        Option.iter (Obs.Metrics.write metrics) metrics_file
      in
      (* Schema-2 attribution: which scheme actually ran, and how the
         run ended — so a partial-result JSON explains itself. *)
      let scheme_name =
        match (plan, dial) with
        | Some p, _ -> Plan.scheme_name p.Plan.scheme
        | None, Some _ -> "adaptive"
        | None, None -> (
          match scheme with
          | `Q -> "q"
          | `Nocomm -> "nocomm"
          | `Example2 -> "example2"
          | `Example3 -> "example3"
          | `Wolfson -> "wolfson"
          | `Tradeoff -> "tradeoff"
          | `General -> "general")
      in
      let print_stats ?(outcome = "ok") stats =
        if json then
          print_endline (Stats.to_json ~scheme:scheme_name ~outcome stats)
        else Format.printf "%a@." Stats.pp stats
      in
      if verify then begin
        let report = Verify.check ~config rw ~edb in
        write_sinks ();
        Format.printf "%a@." Verify.pp_report report;
        if not report.Verify.equal_answers then exit 1
      end
      else begin
        match
          (match runtime with
          | `Sim -> Sim_runtime.run ~config rw ~edb
          | `Domain -> Domain_runtime.run ~config rw ~edb
          | `Net ->
            let spec =
              match (plan, dial) with
              | Some p, _ -> Net.Wire.Spec_plan (Plan.to_json p)
              | None, Some _ -> assert false (* rejected above *)
              | None, None -> (
                match scheme with
                | `Q -> Net.Wire.Spec_q { ve; vr }
                | `Nocomm -> Net.Wire.Spec_nocomm
                | `Example2 -> assert false (* rejected above *)
                | `Example3 -> Net.Wire.Spec_example3
                | `Wolfson -> Net.Wire.Spec_wolfson
                | `Tradeoff -> Net.Wire.Spec_tradeoff alpha
                | `General -> Net.Wire.Spec_general)
            in
            Net.Net_runtime.run ~config ~program:program_text ~spec ~seed
              ~procs ~transport:net_transport ~partition:net_partition
              ~hb_ms:net_hb
              ~spawn:(Net.Net_runtime.Exec Sys.executable_name) rw ~edb)
        with
        | result ->
          write_sinks ();
          if not quiet then
            print_answers result.Sim_runtime.answers rw.Rewrite.derived;
          print_stats result.Sim_runtime.stats
        | exception Sim_runtime.Round_budget_exceeded { round; stats } ->
          write_sinks ();
          Format.printf "round budget exceeded after %d rounds@." round;
          print_stats ~outcome:"round_budget" stats;
          exit 3
        | exception Overload.Overload { reason; stats } ->
          write_sinks ();
          Format.printf "overload: %a@." Overload.pp_reason reason;
          print_stats ~outcome:(Overload.reason_kind reason) stats;
          exit 4
        | exception Plan.Rejected r ->
          write_sinks ();
          plan_reject r
      end
  in
  Cmd.v (Cmd.info "par" ~doc)
    Term.(
      const action $ program_arg $ edb_arg $ scheme_arg $ nprocs_arg
      $ seed_arg $ ve_arg $ vr_arg $ alpha_arg $ plan_arg $ auto_arg
      $ runtime_arg $ procs_arg $ net_transport_arg $ net_partition_arg
      $ net_hb_arg $ domains_arg $ detector_arg $ verify_arg $ fault_term
      $ overload_term $ trace_arg $ metrics_arg $ json_arg $ quiet_arg
      $ verbose_arg)

(* ---------------------------------------------------------------- *)
(* worker (internal, spawned by the net runtime's coordinator)        *)
(* ---------------------------------------------------------------- *)

let worker_cmd =
  let doc =
    "Internal: a net-runtime worker process (spawned by $(b,par \
     --runtime net); not for interactive use)."
  in
  let addr_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "addr" ] ~docv:"ADDR"
          ~doc:"Coordinator address: $(b,unix:PATH) or $(b,tcp:PORT).")
  in
  let worker_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "worker" ] ~docv:"W" ~doc:"Worker slot index.")
  in
  let inc_arg =
    Arg.(
      value & opt int 0
      & info [ "inc" ] ~docv:"I" ~doc:"Incarnation number.")
  in
  let action addr worker inc =
    exit (Net.Net_runtime.worker_main ~addr ~worker ~inc)
  in
  Cmd.v (Cmd.info "worker" ~doc)
    Term.(const action $ addr_arg $ worker_arg $ inc_arg)

(* ---------------------------------------------------------------- *)
(* rewrite                                                           *)
(* ---------------------------------------------------------------- *)

let rewrite_cmd =
  let doc = "Print the per-processor programs a scheme generates." in
  let action program edb_file scheme nprocs seed ve vr alpha =
    check_alpha alpha;
    let program = load_program program in
    let edb = load_edb edb_file in
    match build_scheme scheme ~nprocs ~seed ~ve ~vr ~alpha program edb with
    | Error msg ->
      Format.eprintf "cannot build scheme: %s@." msg;
      exit 2
    | Ok rw -> Format.printf "%a@." Rewrite.pp rw
  in
  Cmd.v (Cmd.info "rewrite" ~doc)
    Term.(
      const action $ program_arg $ edb_arg $ scheme_arg $ nprocs_arg
      $ seed_arg $ ve_arg $ vr_arg $ alpha_arg)

(* ---------------------------------------------------------------- *)
(* dataflow                                                          *)
(* ---------------------------------------------------------------- *)

let dataflow_cmd =
  let doc = "Print a linear sirup's dataflow graph (Definition 2)." in
  let action program =
    let program = load_program program in
    match Analysis.as_sirup program with
    | Error e ->
      Format.eprintf "not a linear sirup: %s@." (Analysis.explain_not_sirup e);
      exit 2
    | Ok s ->
      let g = Dataflow.of_sirup s in
      Format.printf "dataflow graph: %a@." Dataflow.pp g;
      (match Dataflow.find_cycle g with
       | Some c ->
         Format.printf "cycle: %s@."
           (String.concat " -> " (List.map string_of_int c))
       | None -> Format.printf "cycle: none@.");
      (match Dataflow.communication_free_choice s with
       | Some fc ->
         Format.printf
           "Theorem 3 choice: v(e) = <%s>, v(r) = <%s> with a symmetric \
            hash gives a communication-free execution@."
           (String.concat ", " fc.Dataflow.ve)
           (String.concat ", " fc.Dataflow.vr)
       | None ->
         Format.printf
           "no communication-free choice (dataflow graph is acyclic)@.")
  in
  Cmd.v (Cmd.info "dataflow" ~doc) Term.(const action $ program_arg)

(* ---------------------------------------------------------------- *)
(* network                                                           *)
(* ---------------------------------------------------------------- *)

let network_cmd =
  let doc =
    "Derive the minimal network graph for a linear sirup (Section 5)."
  in
  let spec_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "linear" ] ~docv:"COEFFS"
          ~doc:
            "Use the linear form with these coefficients (e.g. 1,-1,1 for \
             Example 7). Without this flag the bit-vector form of Example \
             6 is used.")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz output.")
  in
  let action program ve vr linear dot =
    let program = load_program program in
    match Analysis.as_sirup program with
    | Error e ->
      Format.eprintf "not a linear sirup: %s@." (Analysis.explain_not_sirup e);
      exit 2
    | Ok s ->
      if ve = [] || vr = [] then begin
        Format.eprintf "network requires --ve and --vr@.";
        exit 2
      end;
      let spec =
        match linear with
        | Some coeffs ->
          let arr = Array.of_list coeffs in
          let lo = Array.fold_left (fun acc c -> acc + min 0 c) 0 arr in
          Hash_fn.Linear { coeffs = arr; lo }
        | None -> Hash_fn.Bitvec
      in
      (match Derive.minimal_network { sirup = s; ve; vr; spec } with
       | Error e ->
         Format.eprintf "derivation failed: %s@." e;
         exit 2
       | Ok net ->
         if dot then print_string (Netgraph.to_dot net)
         else begin
           Format.printf "minimal network (%d edges):@." (Netgraph.edge_count net);
           Format.printf "  @[%a@]@." Netgraph.pp net;
           let cross = Netgraph.without_self net in
           Format.printf "cross-processor edges: %d@."
             (Netgraph.edge_count cross)
         end)
  in
  Cmd.v (Cmd.info "network" ~doc)
    Term.(const action $ program_arg $ ve_arg $ vr_arg $ spec_arg $ dot_arg)

(* ---------------------------------------------------------------- *)
(* check                                                             *)
(* ---------------------------------------------------------------- *)

let check_cmd =
  let doc =
    "Statically check a program: safety, arities, stratification, \
     reachability, sirup shape, and (with --ve/--vr) the Theorem 2/3 \
     scheme conditions and the Section 5 network prediction. With \
     --suggest, synthesize the cheapest verified scheme and (with \
     --json) emit it as a plan certificate for $(b,par --plan)."
  in
  let program_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"PROGRAM" ~doc:"Datalog program file.")
  in
  let linear_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "linear" ] ~docv:"COEFFS"
          ~doc:
            "Predict the network for the linear discriminating form with \
             these coefficients (Example 7).")
  in
  let bitvec_arg =
    Arg.(
      value & flag
      & info [ "bitvec" ]
          ~doc:"Predict the network for the bit-vector form (Example 6).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the findings as a JSON array.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit non-zero on warnings too (for CI).")
  in
  let codes_arg =
    Arg.(
      value & flag
      & info [ "codes" ] ~doc:"List every diagnostic code and exit.")
  in
  let goal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "goal" ] ~docv:"PRED"
          ~doc:
            "The output predicate; reachability (W004) is checked \
             backwards from it.")
  in
  let suggest_arg =
    Arg.(
      value & flag
      & info [ "suggest" ]
          ~doc:
            "Synthesize a scheme: enumerate the candidate schemes, \
             reject the ones failing Theorem 2/3 re-verification, rank \
             the survivors by predicted cost (I110-I112, W110), and \
             with --json print the winning plan certificate.")
  in
  let check_edb_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "edb" ] ~docv:"FILE"
          ~doc:
            "Ground facts to profile (cardinalities, per-column skew); \
             sharpens the --suggest cost model.")
  in
  let action program goal ve vr linear bitvec json strict codes suggest
      edb_file nprocs seed =
    if codes then begin
      List.iter
        (fun (c, d) -> Printf.printf "%s  %s\n" c d)
        Check.Diagnostic.registry;
      exit 0
    end;
    let path =
      match program with
      | Some p -> p
      | None ->
        Format.eprintf "check requires a PROGRAM (or --codes)@.";
        exit 2
    in
    let p = load_program path in
    let diags = Check.Engine.check_program ~file:path ?goal p in
    let diags =
      if ve = [] && vr = [] then diags
      else begin
        let spec =
          match linear with
          | Some coeffs ->
            let arr = Array.of_list coeffs in
            let lo = Array.fold_left (fun acc c -> acc + min 0 c) 0 arr in
            Hash_fn.Linear { coeffs = arr; lo }
          | None -> if bitvec then Hash_fn.Bitvec else Hash_fn.Opaque
        in
        let report = Check.Scheme.check_scheme ~file:path ~spec ~ve ~vr p in
        diags @ report.Check.Scheme.diagnostics
      end
    in
    let diags, plan =
      if not suggest then (diags, None)
      else begin
        let profile =
          Option.map
            (fun _ -> Check.Costmodel.profile_of_db (load_edb edb_file))
            edb_file
        in
        let outcome =
          Check.Planner.suggest ~file:path ?profile ~nprocs ~seed p
        in
        (diags @ outcome.Check.Planner.diagnostics, outcome.Check.Planner.plan)
      end
    in
    (* With --suggest --json, stdout carries the certificate itself, so
       `check --suggest --json > plan.json` feeds `par --plan` directly;
       the diagnostics JSON is printed only when no plan was found. *)
    (match (json, plan) with
    | true, Some plan when suggest -> print_string (Plan.to_json plan)
    | true, _ -> print_string (Check.Diagnostic.list_to_json diags ^ "\n")
    | false, _ ->
      if diags <> [] then Format.printf "%a" Check.Diagnostic.pp_list diags;
      Format.printf "%a@." Check.Diagnostic.pp_summary diags);
    if suggest && plan = None then exit 1
    else exit (Check.Diagnostic.exit_code ~strict diags)
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const action $ program_arg $ goal_arg $ ve_arg $ vr_arg $ linear_arg
      $ bitvec_arg $ json_arg $ strict_arg $ codes_arg $ suggest_arg
      $ check_edb_arg $ nprocs_arg $ seed_arg)

(* ---------------------------------------------------------------- *)
(* dong                                                              *)
(* ---------------------------------------------------------------- *)

let dong_cmd =
  let doc =
    "Evaluate under Dong's decomposition baseline (constant-disjoint \
     components, no communication)."
  in
  let action program edb_file nprocs quiet =
    let program = load_program program in
    let edb = load_edb edb_file in
    match Decompose.run program ~nprocs edb with
    | Error msg ->
      Format.eprintf "not applicable: %s@." msg;
      exit 2
    | Ok (result, analysis) ->
      if not quiet then
        print_answers result.Sim_runtime.answers
          (Program.derived_predicates program);
      Format.printf "components: %d;  tuples per processor: %s@."
        analysis.Decompose.component_count
        (String.concat ", "
           (Array.to_list
              (Array.map string_of_int analysis.Decompose.tuples_per_proc)));
      Format.printf "%a@." Stats.pp result.Sim_runtime.stats
  in
  Cmd.v (Cmd.info "dong" ~doc)
    Term.(const action $ program_arg $ edb_arg $ nprocs_arg $ quiet_arg)

(* ---------------------------------------------------------------- *)
(* gen                                                               *)
(* ---------------------------------------------------------------- *)

let gen_cmd =
  let doc = "Generate a workload and print it as Datalog facts." in
  let family_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("chain", `Chain); ("cycle", `Cycle); ("tree", `Tree);
                  ("random", `Random); ("grid", `Grid) ]))
          None
      & info [] ~docv:"FAMILY" ~doc:"chain, cycle, tree, random or grid.")
  in
  let size_arg =
    Arg.(
      value & opt int 100
      & info [ "size" ] ~docv:"N"
          ~doc:"Nodes (chain/cycle/random), depth (tree) or side (grid).")
  in
  let edges_arg =
    Arg.(
      value & opt int 200
      & info [ "edges" ] ~docv:"M" ~doc:"Edge count for random graphs.")
  in
  let pred_arg =
    Arg.(
      value & opt string "par"
      & info [ "pred" ] ~docv:"NAME" ~doc:"Predicate name of the facts.")
  in
  let action family size edges pred seed =
    let rng = Workload.Rng.create ~seed in
    let es =
      match family with
      | `Chain -> Workload.Graphgen.chain size
      | `Cycle -> Workload.Graphgen.cycle size
      | `Tree -> Workload.Graphgen.binary_tree ~depth:size
      | `Random -> Workload.Graphgen.random_digraph rng ~nodes:size ~edges
      | `Grid -> Workload.Graphgen.grid ~rows:size ~cols:size
    in
    List.iter (fun (a, b) -> Printf.printf "%s(%d,%d).\n" pred a b) es
  in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(const action $ family_arg $ size_arg $ edges_arg $ pred_arg $ seed_arg)

(* ---------------------------------------------------------------- *)

let () =
  let doc = "parallel bottom-up Datalog evaluation (Ganguly-Silberschatz-Tsur)" in
  let info = Cmd.info "datalogp" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
                    [ run_cmd; query_cmd; par_cmd; worker_cmd; dong_cmd;
                      rewrite_cmd; dataflow_cmd; network_cmd; check_cmd;
                      gen_cmd ]))
