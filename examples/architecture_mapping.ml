(* Section 5's punchline: "the rewriting method at compile time can be
   adapted to the architecture of the system."

   Given a physical interconnect (here: a unidirectional ring, a
   2D hypercube and a star), we derive the minimal network a
   discriminating-function choice requires and test whether it embeds
   into the architecture. When it does, the execution is run with the
   architecture enforced (Definition 3: tuples may only travel existing
   links; no routing through intermediaries).

   Run with:  dune exec examples/architecture_mapping.exe *)

open Datalog
open Pardatalog

let sirup6 = Result.get_ok (Analysis.as_sirup Workload.Progs.example6)

(* Candidate physical architectures over 4 processors, in the bit-vector
   label space of Example 6. *)
let space = Pid.bitvec 2

let ring =
  (* (00) -> (01) -> (11) -> (10) -> (00), plus self loops (a processor
     can always talk to itself). *)
  Netgraph.union
    (Netgraph.self_only space)
    (Netgraph.of_labels space
       [ ("(00)", "(01)"); ("(01)", "(11)"); ("(11)", "(10)"); ("(10)", "(00)") ])

let hypercube =
  (* Edges between labels at Hamming distance 1, both directions. *)
  Netgraph.union
    (Netgraph.self_only space)
    (Netgraph.of_labels space
       [
         ("(00)", "(01)"); ("(01)", "(00)");
         ("(00)", "(10)"); ("(10)", "(00)");
         ("(01)", "(11)"); ("(11)", "(01)");
         ("(10)", "(11)"); ("(11)", "(10)");
       ])

let crossbar = Netgraph.complete space

let required =
  Result.get_ok
    (Derive.minimal_network
       { sirup = sirup6; ve = [ "X"; "Y" ]; vr = [ "Y"; "Z" ];
         spec = Hash_fn.Bitvec })

let random_edb seed =
  let rng = Workload.Rng.create ~seed in
  let edb = Database.create () in
  List.iter
    (fun (a, b) ->
      ignore (Database.add_fact edb "q" (Tuple.of_ints [ a; b ]));
      ignore (Database.add_fact edb "r" (Tuple.of_ints [ b; a ])))
    (Workload.Graphgen.random_digraph rng ~nodes:30 ~edges:60);
  edb

let () =
  Format.printf
    "Example 6 with h(Y,Z) = (g(Y),g(Z)) requires these channels:@.  @[%a@]@.@."
    Netgraph.pp required;
  let try_architecture name net =
    let fits = Netgraph.subgraph required net in
    Format.printf "%-10s (%2d links): required network embeds = %b@." name
      (Netgraph.edge_count (Netgraph.without_self net))
      fits;
    if fits then begin
      (* Execute with the architecture enforced. *)
      let h = Hash_fn.bitvec ~arity:2 () in
      let rw =
        Rewrite.make Workload.Progs.example6
          ~policies:
            [
              Rewrite.Uniform (Discriminant.make ~vars:[ "X"; "Y" ] ~fn:h);
              Rewrite.Uniform (Discriminant.make ~vars:[ "Y"; "Z" ] ~fn:h);
            ]
      in
      let config = Run_config.(default |> with_network (Some net)) in
      let r = Sim_runtime.run ~config rw ~edb:(random_edb 1) in
      Format.printf
        "           executed on it: %d messages, answers computed (%d p \
         tuples)@."
        (Stats.total_messages r.Sim_runtime.stats)
        (Database.cardinal r.Sim_runtime.answers "p")
    end
  in
  try_architecture "ring" ring;
  try_architecture "hypercube" hypercube;
  try_architecture "crossbar" crossbar;
  try_architecture "tailored" (Netgraph.union (Netgraph.self_only space) required);
  Format.printf
    "@.neither the ring nor even the hypercube hosts this choice: the \
     derived@.network needs the diagonal (01)->(10). A full crossbar \
     works but wastes@.links; provisioning exactly the derived channels \
     (\"tailored\") needs only@.%d directed links. To fit a smaller \
     machine the compiler would pick a@.different discriminating \
     function or processor labelling instead.@."
    (Netgraph.edge_count (Netgraph.without_self required))
